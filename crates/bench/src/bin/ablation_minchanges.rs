//! Experiment A2 — the **§4 min-changes ablation**: the paper notes that
//! the association rules, which generalize across a template's entities,
//! "achieve similar precision without" the fewer-than-five-changes
//! filter. This binary runs the association-rule predictor on the corpus
//! filtered both ways and compares.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin ablation_minchanges --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{AssocParams, AssociationRulePredictor};
use wikistale_wikicube::CubeIndex;

fn main() {
    run_experiment("ablation_minchanges", |prepared, _rest| {
        // `prepared.filtered` already has the min-changes filter; rebuild
        // the no-min-changes variant from scratch for the comparison. The
        // raw cube is not kept in `Prepared`, so regenerate it — cheap and
        // exactly reproducible from the same seed.
        println!("association-rule precision with vs without the <5-changes filter");
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>12}",
            "corpus", "P [%]", "R [%]", "#", "fields"
        );
        for (label, pipeline) in [
            ("paper filter (≥5 changes)", FilterPipeline::paper()),
            (
                "no min-changes filter",
                FilterPipeline::without_min_changes(),
            ),
        ] {
            // Recreate the raw corpus deterministically.
            let raw = wikistale_synth::generate(&synth_config_of(prepared)).cube;
            let (filtered, _) = pipeline.apply(&raw);
            let index = CubeIndex::build(&filtered);
            let data = EvalData::new(&filtered, &index);
            let ar = AssociationRulePredictor::train(
                &data,
                prepared.split.train_and_validation(),
                AssocParams::default(),
            );
            let predictions = ar.predict(&data, prepared.split.test, 7);
            let truth = truth_set(&index, prepared.split.test, 7);
            let outcome = evaluate(&predictions, &truth);
            println!(
                "{:<26} {:>10.2} {:>10.2} {:>10} {:>12}",
                label,
                100.0 * outcome.precision(),
                100.0 * outcome.recall(),
                outcome.predictions,
                index.num_fields()
            );
        }
        println!("(paper §4: association rules achieve similar precision without the filter)");
    });
}

/// `Prepared` does not carry its generator config; the experiment binaries
/// share the standard arg parsing, so rebuild the config from the same
/// CLI arguments.
fn synth_config_of(_prepared: &wikistale_bench::Prepared) -> wikistale_synth::SynthConfig {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (config, _) = wikistale_bench::config_from_args(&argv).expect("args already validated");
    config
}
