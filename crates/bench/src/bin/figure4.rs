//! Experiment F4 — regenerate **Figure 4**: precision and recall per week
//! of the test year (7-day windows) for field correlations, association
//! rules, and both ensembles.
//!
//! The paper's observations to compare against: precision stays near or
//! above the 85 % bar with a slight downward trend and a mid-year dip;
//! recall stays broadly flat with the same dip.
//!
//! Pass `--svg <path>` to additionally write both panels as an SVG file.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin figure4 --release [-- --scale small --svg figure4.svg]
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::report;

fn main() {
    run_experiment("figure4", |prepared, rest| {
        let results = run_paper_evaluation(
            &prepared.filtered,
            &prepared.split,
            &ExperimentConfig::default(),
        );
        println!("{}", report::render_figure4(&results));
        // Aggregate trend summary: first vs last quarter of the year.
        if let Some(series) = &results.granularity(7).unwrap().weekly_series {
            let quarter = |outcomes: &[wikistale_core::EvalOutcome]| {
                let (tp, pred): (usize, usize) = outcomes
                    .iter()
                    .map(|o| (o.true_positives, o.predictions))
                    .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
                100.0 * tp as f64 / pred.max(1) as f64
            };
            let or = &series[3];
            println!(
                "OR-ensemble precision, first 13 weeks: {:.2} %  — last 13 weeks: {:.2} %",
                quarter(&or[..13]),
                quarter(&or[39..])
            );
            println!("(paper: slight downward trend, still above 85 % at year end)");
        }
        let svg_path = rest
            .iter()
            .position(|f| f == "--svg")
            .and_then(|i| rest.get(i + 1).cloned());
        if let Some(path) = svg_path {
            let svg = wikistale_core::figures::figure4_svg(&results).expect("weekly series");
            std::fs::write(&path, svg).expect("write SVG");
            eprintln!("figure4: wrote {path}");
        }
    });
}
