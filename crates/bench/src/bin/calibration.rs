//! Experiment X4 — **rule-confidence calibration**: does a rule mined at
//! confidence c actually hold with probability ≈ c at deployment time?
//!
//! The paper leans on this implicitly: the 90 % validation-precision
//! pruning exists because mined confidence alone is not trusted, and §5.3.2
//! observes test precision landing close to validation precision. This
//! binary bins the surviving rules by mined confidence and reports each
//! bin's realized precision on the test year — a reliability table.
//!
//! ```sh
//! cargo run -p wikistale-bench --bin calibration --release
//! ```

use wikistale_bench::run_experiment;
use wikistale_core::predictor::EvalData;
use wikistale_core::predictors::{AssocParams, AssociationRulePredictor};
use wikistale_wikicube::{CubeIndex, FieldId};

fn main() {
    run_experiment("calibration", |prepared, _rest| {
        let index = CubeIndex::build(&prepared.filtered);
        let data = EvalData::new(&prepared.filtered, &index);
        // Mine WITHOUT the validation pruning so the low-confidence bins
        // are populated — that is the point of the reliability table.
        let ar = AssociationRulePredictor::train(
            &data,
            prepared.split.train_and_validation(),
            AssocParams {
                apriori: wikistale_apriori::AprioriParams {
                    min_confidence: 0.3,
                    ..Default::default()
                },
                validation_fraction: 0.0,
                ..AssocParams::default()
            },
        );

        // Realized precision per rule on the test year: of the weeks where
        // the LHS changed, in how many did the RHS change too?
        let bins = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.01];
        let mut fired = vec![0u64; bins.len() - 1];
        let mut hit = vec![0u64; bins.len() - 1];
        let mut rules_in_bin = vec![0u64; bins.len() - 1];
        let test = prepared.split.test;
        for rule in ar.rules() {
            let bin = bins
                .windows(2)
                .position(|w| rule.confidence >= w[0] && rule.confidence < w[1]);
            let Some(bin) = bin else { continue };
            rules_in_bin[bin] += 1;
            for &entity in index.entities_of_template(rule.template) {
                let Some(lhs_pos) = index.position(FieldId::new(entity, rule.lhs)) else {
                    continue;
                };
                let rhs_pos = index.position(FieldId::new(entity, rule.rhs));
                for week in 0..52u32 {
                    let start = test.start() + (week * 7) as i32;
                    let end = start + 7;
                    if index.changed_in(lhs_pos, start, end) {
                        fired[bin] += 1;
                        if rhs_pos.is_some_and(|p| index.changed_in(p, start, end)) {
                            hit[bin] += 1;
                        }
                    }
                }
            }
        }

        println!("reliability of mined rule confidence (7-day windows, test year)");
        println!(
            "{:>12} {:>8} {:>10} {:>12} {:>10}",
            "confidence", "rules", "firings", "realized P", "gap"
        );
        for (i, w) in bins.windows(2).enumerate() {
            if fired[i] == 0 {
                continue;
            }
            let realized = hit[i] as f64 / fired[i] as f64;
            let mid = (w[0] + w[1].min(1.0)) / 2.0;
            println!(
                "{:>5.2}–{:<5.2} {:>8} {:>10} {:>11.2} % {:>+9.2}",
                w[0],
                w[1].min(1.0),
                rules_in_bin[i],
                fired[i],
                100.0 * realized,
                100.0 * (realized - mid),
            );
        }
        println!(
            "\n(a well-calibrated miner keeps |gap| small; the paper's extra 90 % \
             validation pruning exists exactly because high bins matter most)"
        );
    });
}
