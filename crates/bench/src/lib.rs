//! # wikistale-bench
//!
//! The experiment harness: one binary per table / figure of the paper
//! (see `DESIGN.md` for the experiment index) plus criterion benches for
//! the performance-critical kernels.
//!
//! Every binary accepts `--scale tiny|small|medium` (default `small`) and
//! `--seed N`; the corpus, filter pipeline, and split are shared through
//! [`prepare`], so all experiments run against the same data for a given
//! scale and seed.

use wikistale_core::filters::{FilterPipeline, FilterReport};
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, GroundTruth, SynthConfig};
use wikistale_wikicube::{ChangeCube, CorpusStats};

/// Corpus scale presets understood by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred entities; seconds end to end. For smoke runs.
    Tiny,
    /// ≈ 11 k entities (the default); the full evaluation in seconds.
    Small,
    /// ≈ 55 k entities; minutes end to end.
    Medium,
}

impl Scale {
    /// Parse a scale name.
    pub fn parse(name: &str) -> Result<Scale, String> {
        match name {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            other => Err(format!("unknown scale {other:?} (tiny|small|medium)")),
        }
    }

    /// The corresponding generator configuration.
    pub fn config(self) -> SynthConfig {
        match self {
            Scale::Tiny => SynthConfig::tiny(),
            Scale::Small => SynthConfig::small(),
            Scale::Medium => SynthConfig::medium(),
        }
    }
}

/// Everything the experiment binaries need, prepared once.
pub struct Prepared {
    /// The raw (unfiltered) corpus statistics.
    pub raw_stats: CorpusStats,
    /// The filtered cube the predictors run on.
    pub filtered: ChangeCube,
    /// Per-stage filter accounting.
    pub filter_report: FilterReport,
    /// Train/validation/test split (the paper's fixed dates).
    pub split: EvalSplit,
    /// The generator's ground truth of forgotten updates.
    pub ground_truth: GroundTruth,
}

/// Generate, measure, and filter the corpus for `config`.
pub fn prepare(config: &SynthConfig) -> Prepared {
    let corpus = generate(config);
    let raw_stats = CorpusStats::compute(&corpus.cube);
    let (filtered, filter_report) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(
        filtered
            .time_span()
            .expect("generated corpus is never empty"),
    )
    .expect("corpus spans more than two years");
    Prepared {
        raw_stats,
        filtered,
        filter_report,
        split,
        ground_truth: corpus.ground_truth,
    }
}

/// Parse the common `--scale` / `--seed` flags of the experiment binaries
/// and return the resolved generator config plus the remaining flags.
pub fn config_from_args(argv: &[String]) -> Result<(SynthConfig, Vec<String>), String> {
    let mut config = SynthConfig::small();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                let value = argv.get(i + 1).ok_or("--scale needs a value")?;
                config = Scale::parse(value)?.config();
                i += 2;
            }
            "--seed" => {
                let value = argv.get(i + 1).ok_or("--seed needs a value")?;
                config.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed {value:?}"))?;
                i += 2;
            }
            other => {
                rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    Ok((config, rest))
}

/// Standard entry point used by the experiment binaries: parse args,
/// prepare the corpus, hand off to the experiment body.
pub fn run_experiment(name: &str, body: impl FnOnce(&Prepared, &[String])) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (config, rest) = match config_from_args(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "{name}: corpus seed {} / {} entities — generating…",
        config.seed, config.num_entities
    );
    let start = std::time::Instant::now();
    let prepared = prepare(&config);
    eprintln!(
        "{name}: prepared in {:?} ({} filtered changes)",
        start.elapsed(),
        prepared.filtered.num_changes()
    );
    body(&prepared, &rest);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny").unwrap(), Scale::Tiny);
        assert_eq!(Scale::parse("small").unwrap(), Scale::Small);
        assert_eq!(Scale::parse("medium").unwrap(), Scale::Medium);
        assert!(Scale::parse("huge").is_err());
        assert_eq!(Scale::Medium.config().num_entities, 55_000);
    }

    #[test]
    fn config_from_args_handles_flags() {
        let argv: Vec<String> = ["--scale", "tiny", "--seed", "7", "--theta"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (config, rest) = config_from_args(&argv).unwrap();
        assert_eq!(config.num_entities, SynthConfig::tiny().num_entities);
        assert_eq!(config.seed, 7);
        assert_eq!(rest, vec!["--theta"]);
        assert!(config_from_args(&["--scale".to_string()]).is_err());
        assert!(config_from_args(&["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn prepare_produces_consistent_bundle() {
        let prepared = prepare(&SynthConfig::tiny());
        assert!(prepared.raw_stats.total_changes > prepared.filtered.num_changes());
        assert_eq!(
            prepared.filter_report.stages.last().unwrap().remaining,
            prepared.filtered.num_changes()
        );
        assert!(prepared.split.test.len_days() == 365);
        assert!(!prepared.ground_truth.is_empty());
    }
}
