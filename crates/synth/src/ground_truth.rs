//! Ground-truth staleness bookkeeping.
//!
//! The evaluation protocol of the paper treats the *observed* change
//! history as truth, which — as §5.4 discusses — penalizes a predictor for
//! correctly flagging updates the editors genuinely forgot. Because our
//! corpus is generated, we know exactly which updates were forgotten; the
//! generator records them here so examples and the §5.4-style analysis can
//! measure how many "false positives" are actually true staleness.

use wikistale_wikicube::{ChangeCube, Date, EntityId, FieldId, PropertyId};

/// One update that *should* have happened but was not made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForgottenUpdate {
    /// The day the co-updating process fired without this field.
    pub day: Date,
    /// The stale field.
    pub field: FieldId,
}

/// All forgotten updates of a generated corpus, sorted by `(day, field)`.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    forgotten: Vec<ForgottenUpdate>,
}

impl GroundTruth {
    /// Record a forgotten update (generator-internal).
    pub(crate) fn record(&mut self, day: Date, entity: EntityId, property: PropertyId) {
        self.forgotten.push(ForgottenUpdate {
            day,
            field: FieldId::new(entity, property),
        });
    }

    /// Finalize ordering (generator-internal).
    pub(crate) fn seal(&mut self) {
        self.forgotten.sort_unstable_by_key(|f| (f.day, f.field));
    }

    /// All forgotten updates, sorted by `(day, field)`.
    pub fn forgotten(&self) -> &[ForgottenUpdate] {
        &self.forgotten
    }

    /// Number of forgotten updates.
    pub fn len(&self) -> usize {
        self.forgotten.len()
    }

    /// Whether no update was forgotten.
    pub fn is_empty(&self) -> bool {
        self.forgotten.is_empty()
    }

    /// Whether `field` was stale at any day in `[start, end)` — i.e. a
    /// forgotten update for it falls inside the window.
    pub fn was_stale_in(&self, field: FieldId, start: Date, end: Date) -> bool {
        let lo = self.forgotten.partition_point(|f| f.day < start);
        self.forgotten[lo..]
            .iter()
            .take_while(|f| f.day < end)
            .any(|f| f.field == field)
    }

    /// Human-readable description of a forgotten update against a cube.
    pub fn describe(&self, cube: &ChangeCube, f: &ForgottenUpdate) -> String {
        format!(
            "{}: page {:?}, property {:?} missed an expected update",
            f.day,
            cube.page_title(cube.page_of(f.field.entity)),
            cube.property_name(f.field.property),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::{EntityId, PropertyId};

    fn field(e: u32, p: u32) -> FieldId {
        FieldId::new(EntityId(e), PropertyId(p))
    }

    #[test]
    fn records_and_queries() {
        let mut gt = GroundTruth::default();
        gt.record(Date::EPOCH + 10, EntityId(1), PropertyId(2));
        gt.record(Date::EPOCH + 5, EntityId(0), PropertyId(0));
        gt.seal();
        assert_eq!(gt.len(), 2);
        assert_eq!(gt.forgotten()[0].day, Date::EPOCH + 5);
        assert!(gt.was_stale_in(field(1, 2), Date::EPOCH + 10, Date::EPOCH + 11));
        assert!(gt.was_stale_in(field(1, 2), Date::EPOCH, Date::EPOCH + 100));
        assert!(!gt.was_stale_in(field(1, 2), Date::EPOCH + 11, Date::EPOCH + 100));
        assert!(!gt.was_stale_in(field(9, 9), Date::EPOCH, Date::EPOCH + 100));
    }

    #[test]
    fn empty_truth() {
        let gt = GroundTruth::default();
        assert!(gt.is_empty());
        assert!(!gt.was_stale_in(field(0, 0), Date::EPOCH, Date::EPOCH + 1));
    }
}
