//! Small sampling helpers on top of `rand`.
//!
//! Only what the generator needs: exponential inter-arrival times (for
//! Poisson processes), Zipf-skewed discrete weights, and uniform ranges.
//! Implemented here rather than pulling `rand_distr` to keep the
//! dependency set to the approved offline list.

use rand::Rng;

/// Sample an exponential inter-arrival time with rate `rate` (events per
/// day), in days. Returns `f64::INFINITY` for a zero rate.
pub fn exp_days<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    // Inverse CDF; `random::<f64>()` is in [0, 1), guard the log at 0.
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Sample the event days of a Poisson process with `rate_per_year` over
/// `span_days` days, as offsets in `[0, span_days)`.
pub fn poisson_process_days<R: Rng + ?Sized>(
    rng: &mut R,
    rate_per_year: f64,
    span_days: u32,
) -> Vec<u32> {
    let rate_per_day = rate_per_year / 365.25;
    let mut days = Vec::new();
    let mut t = exp_days(rng, rate_per_day);
    while t < span_days as f64 {
        days.push(t as u32);
        t += exp_days(rng, rate_per_day);
    }
    days
}

/// Zipf-like weights `1 / (rank + 1)^s` for `n` ranks, normalized to sum
/// to 1.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Apportion `total` units over `weights` (which must sum to ≈ 1), giving
/// every rank at least one unit while the budget lasts. The result sums to
/// exactly `total` when `total ≥ weights.len()`.
pub fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| (w * total as f64).floor() as usize)
        .collect();
    for c in counts.iter_mut() {
        if *c == 0 {
            *c = 1;
        }
    }
    // Fix up rounding drift against the largest ranks first.
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned > total && counts.iter().any(|&c| c > 1) {
        let idx = counts.len() - 1 - (i % counts.len());
        if counts[idx] > 1 {
            counts[idx] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    let n = counts.len();
    let mut i = 0;
    while assigned < total {
        counts[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// Uniform sample from an inclusive `(lo, hi)` pair.
pub fn uniform_range<R: Rng + ?Sized>(rng: &mut R, range: (usize, usize)) -> usize {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.random_range(range.0..=range.1)
    }
}

/// Uniform `f64` sample from an inclusive `(lo, hi)` pair.
pub fn uniform_f64<R: Rng + ?Sized>(rng: &mut R, range: (f64, f64)) -> f64 {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.random_range(range.0..=range.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn exp_days_mean_is_inverse_rate() {
        let mut r = rng();
        let rate = 0.2;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_days(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.2, "mean {mean}");
        assert_eq!(exp_days(&mut r, 0.0), f64::INFINITY);
    }

    #[test]
    fn poisson_process_density() {
        let mut r = rng();
        // 12 events/year over 10 years → expect ≈ 120 events.
        let days = poisson_process_days(&mut r, 12.0, 3_652);
        assert!((100..=140).contains(&days.len()), "{} events", days.len());
        assert!(days.windows(2).all(|w| w[0] <= w[1]));
        assert!(days.iter().all(|&d| d < 3_652));
        assert!(poisson_process_days(&mut r, 0.0, 1000).is_empty());
    }

    #[test]
    fn zipf_weights_normalized_and_decreasing() {
        let w = zipf_weights(50, 0.8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!(w[0] > w[49] * 10.0);
    }

    #[test]
    fn apportion_sums_and_minimum() {
        let w = zipf_weights(10, 1.0);
        let counts = apportion(100, &w);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|&c| c >= 1));
        assert!(counts[0] >= counts[9]);
        // Degenerate: fewer units than ranks still gives everyone ≥ 1.
        let tight = apportion(3, &zipf_weights(5, 1.0));
        assert!(tight.iter().all(|&c| c >= 1));
        assert!(apportion(10, &[]).is_empty());
    }

    #[test]
    fn uniform_helpers_handle_degenerate_ranges() {
        let mut r = rng();
        assert_eq!(uniform_range(&mut r, (4, 4)), 4);
        assert_eq!(uniform_f64(&mut r, (0.3, 0.3)), 0.3);
        for _ in 0..100 {
            let v = uniform_range(&mut r, (2, 5));
            assert!((2..=5).contains(&v));
            let f = uniform_f64(&mut r, (0.1, 0.9));
            assert!((0.1..=0.9).contains(&f));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = poisson_process_days(&mut rng(), 5.0, 2000);
        let b = poisson_process_days(&mut rng(), 5.0, 2000);
        assert_eq!(a, b);
    }
}
