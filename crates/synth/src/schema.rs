//! Template schema synthesis: which properties a template has and how each
//! behaves.

use crate::config::SynthConfig;
use crate::dist::{apportion, uniform_f64, uniform_range, zipf_weights};
use rand::Rng;

/// The behavioural archetype of a property within its template.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyRole {
    /// Created once, never updated (birth dates, coordinates, …). The
    /// overwhelming majority of real infobox fields.
    Static,
    /// Updated opportunistically whenever a page maintenance session
    /// touches the page, with this per-property probability.
    Session {
        /// Probability a session updates this property.
        touch_prob: f64,
    },
    /// Member of the template's correlated cluster: all members update on
    /// the same day, modulo forgetting (the §3.2 signal).
    ClusterMember {
        /// Cluster group index (one cluster per template today).
        group: usize,
    },
    /// Dependent half of the asymmetric rule pair: changes only alongside
    /// some [`PropertyRole::RuleSuper`] events (`ko`, `goals_scored`).
    RuleSub,
    /// Driver half of the asymmetric rule pair: changes on every event
    /// (`wins`, `matches_played`). A change in the sub property implies a
    /// change here — the §3.3 signal.
    RuleSuper,
    /// Bursts of changes once a year in a fixed month (league seasons).
    Seasonal {
        /// Burst start as day-of-year offset (0–334).
        phase: u32,
    },
    /// Changes almost every day (episode counters of running shows).
    Churn,
}

impl PropertyRole {
    /// Whether fields of this role are ever updated after creation.
    pub fn is_updatable(&self) -> bool {
        !matches!(self, PropertyRole::Static)
    }

    /// Whether this role only runs on *special* (actively maintained)
    /// entities of the template.
    pub fn is_special(&self) -> bool {
        matches!(
            self,
            PropertyRole::ClusterMember { .. }
                | PropertyRole::RuleSub
                | PropertyRole::RuleSuper
                | PropertyRole::Churn
        )
    }
}

/// One property of a template schema.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySpec {
    /// Property name, unique within the template.
    pub name: String,
    /// Behavioural archetype.
    pub role: PropertyRole,
}

/// A synthesized template: name, entity budget, and property schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSpec {
    /// Template name (`infobox synth-17`).
    pub name: String,
    /// Number of entities instantiating this template.
    pub entity_count: usize,
    /// Property schema.
    pub properties: Vec<PropertySpec>,
}

impl TemplateSpec {
    /// Indices of the properties in `group`'s cluster.
    pub fn cluster_members(&self, group: usize) -> Vec<usize> {
        self.properties
            .iter()
            .enumerate()
            .filter(|(_, p)| p.role == PropertyRole::ClusterMember { group })
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the rule-pair driver property, if the template has one.
    pub fn rule_super(&self) -> Option<usize> {
        self.properties
            .iter()
            .position(|p| p.role == PropertyRole::RuleSuper)
    }

    /// Index of the rule-pair dependent property, if the template has one.
    pub fn rule_sub(&self) -> Option<usize> {
        self.properties
            .iter()
            .position(|p| p.role == PropertyRole::RuleSub)
    }
}

/// Build all template schemas for `config`.
///
/// Entity counts follow Zipf weights (a few huge templates like
/// `infobox settlement`, a long tail of tiny ones). Special archetypes are
/// assigned to the configured fraction of templates, deterministically
/// spread via the per-template RNG draw.
pub fn build_schemas<R: Rng + ?Sized>(config: &SynthConfig, rng: &mut R) -> Vec<TemplateSpec> {
    let weights = zipf_weights(config.num_templates, 0.9);
    let entity_counts = apportion(config.num_entities, &weights);
    let mut templates = Vec::with_capacity(config.num_templates);
    for (t, &entity_count) in entity_counts.iter().enumerate() {
        let n_props = uniform_range(rng, config.props_per_template);
        let mut properties = Vec::with_capacity(n_props);

        let has_cluster = rng.random_bool(config.cluster_template_fraction);
        let has_rule_pair = rng.random_bool(config.rule_pair_template_fraction);
        let has_seasonal = rng.random_bool(config.seasonal_template_fraction);
        let has_churn = rng.random_bool(config.churn_template_fraction);

        if has_cluster {
            let size = uniform_range(rng, config.cluster_size);
            for m in 0..size {
                properties.push(PropertySpec {
                    name: format!("cluster0_part{m}"),
                    role: PropertyRole::ClusterMember { group: 0 },
                });
            }
        }
        if has_rule_pair {
            properties.push(PropertySpec {
                name: "count_major".to_owned(),
                role: PropertyRole::RuleSuper,
            });
            properties.push(PropertySpec {
                name: "count_minor".to_owned(),
                role: PropertyRole::RuleSub,
            });
        }
        if has_seasonal {
            properties.push(PropertySpec {
                name: "season_stat".to_owned(),
                role: PropertyRole::Seasonal {
                    phase: rng.random_range(0..335),
                },
            });
        }
        if has_churn {
            properties.push(PropertySpec {
                name: "num_episodes".to_owned(),
                role: PropertyRole::Churn,
            });
        }

        // Fill the remainder with statics and session-updated fields.
        let remaining = n_props.saturating_sub(properties.len());
        let n_static = (remaining as f64 * config.static_fraction).round() as usize;
        for i in 0..remaining {
            if i < n_static {
                properties.push(PropertySpec {
                    name: format!("static_{i}"),
                    role: PropertyRole::Static,
                });
            } else {
                properties.push(PropertySpec {
                    name: format!("detail_{}", i - n_static),
                    role: PropertyRole::Session {
                        touch_prob: uniform_f64(rng, config.session_touch_prob),
                    },
                });
            }
        }

        templates.push(TemplateSpec {
            name: format!("infobox synth-{t}"),
            entity_count,
            properties,
        });
    }
    templates
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schemas() -> Vec<TemplateSpec> {
        let config = SynthConfig::small();
        let mut rng = StdRng::seed_from_u64(config.seed);
        build_schemas(&config, &mut rng)
    }

    #[test]
    fn entity_budget_is_exact_and_skewed() {
        let config = SynthConfig::small();
        let templates = schemas();
        assert_eq!(templates.len(), config.num_templates);
        let total: usize = templates.iter().map(|t| t.entity_count).sum();
        assert_eq!(total, config.num_entities);
        assert!(templates[0].entity_count > templates.last().unwrap().entity_count);
    }

    #[test]
    fn property_names_unique_within_template() {
        for t in schemas() {
            let mut names: Vec<&str> = t.properties.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate property in {}", t.name);
        }
    }

    #[test]
    fn archetype_fractions_roughly_match_config() {
        let config = SynthConfig::small();
        let templates = schemas();
        let with_cluster = templates
            .iter()
            .filter(|t| !t.cluster_members(0).is_empty())
            .count() as f64
            / templates.len() as f64;
        assert!((with_cluster - config.cluster_template_fraction).abs() < 0.15);
        let with_rule = templates
            .iter()
            .filter(|t| t.rule_super().is_some())
            .count() as f64
            / templates.len() as f64;
        assert!((with_rule - config.rule_pair_template_fraction).abs() < 0.15);
    }

    #[test]
    fn rule_pair_comes_in_pairs() {
        for t in schemas() {
            assert_eq!(t.rule_super().is_some(), t.rule_sub().is_some());
            if let Some(s) = t.rule_super() {
                assert_ne!(Some(s), t.rule_sub());
            }
        }
    }

    #[test]
    fn statics_dominate() {
        let templates = schemas();
        let (statics, total): (usize, usize) = templates.iter().fold((0, 0), |(s, n), t| {
            (
                s + t
                    .properties
                    .iter()
                    .filter(|p| p.role == PropertyRole::Static)
                    .count(),
                n + t.properties.len(),
            )
        });
        let frac = statics as f64 / total as f64;
        assert!(frac > 0.6, "static fraction {frac}");
    }

    #[test]
    fn role_predicates() {
        assert!(!PropertyRole::Static.is_updatable());
        assert!(PropertyRole::Churn.is_updatable());
        assert!(PropertyRole::Churn.is_special());
        assert!(PropertyRole::RuleSub.is_special());
        assert!(!PropertyRole::Session { touch_prob: 0.5 }.is_special());
        assert!(!PropertyRole::Seasonal { phase: 10 }.is_special());
    }

    #[test]
    fn deterministic() {
        let a = schemas();
        let b = schemas();
        assert_eq!(a, b);
    }
}
