//! Generator configuration and presets.

use wikistale_wikicube::Date;

/// All knobs of the synthetic corpus generator.
///
/// The defaults (= [`SynthConfig::small`]) are calibrated so the raw corpus
/// roughly matches the composition the paper reports in §4: about half of
/// all raw changes are creations, a fifth are deletions, a third of raw
/// updates are same-day duplicates, and a bit over half of the deduplicated
/// updates live in fields with fewer than five changes.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed; two runs with equal configs are byte-identical.
    pub seed: u64,
    /// First day of the corpus (paper: 2003-01-04).
    pub start: Date,
    /// Day after the last day of the corpus (paper: 2019-09-02, exclusive
    /// end 2019-09-03).
    pub end: Date,
    /// Number of infobox templates.
    pub num_templates: usize,
    /// Total number of entities (infoboxes), distributed over templates
    /// with Zipf skew.
    pub num_entities: usize,

    // ----- schema composition (per template, drawn uniformly) -----
    /// Min/max properties per template schema.
    pub props_per_template: (usize, usize),
    /// Fraction of a schema that is static (created once, never updated).
    pub static_fraction: f64,
    /// Fraction of schemas that carry one correlated cluster.
    pub cluster_template_fraction: f64,
    /// Cluster size range (properties per cluster).
    pub cluster_size: (usize, usize),
    /// Fraction of schemas that carry one asymmetric rule pair.
    pub rule_pair_template_fraction: f64,
    /// Fraction of schemas that carry one seasonal property.
    pub seasonal_template_fraction: f64,
    /// Fraction of schemas that carry one daily-churn property.
    pub churn_template_fraction: f64,
    /// Fraction of a template's entities whose special processes (cluster,
    /// rule pair, churn) are actually *active*. Most real pages with a
    /// soccer-club template are not actively maintained; this is what keeps
    /// the predictors' recall in the paper's single-digit range.
    pub special_entity_fraction: f64,

    // ----- change processes -----
    /// Page maintenance sessions per year (Poisson rate).
    pub sessions_per_year: f64,
    /// Range of per-field touch probabilities during a session.
    pub session_touch_prob: (f64, f64),
    /// Cluster co-update events per year (Poisson rate).
    pub cluster_events_per_year: f64,
    /// Probability a cluster member is *forgotten* at a cluster event
    /// (this is the true staleness the system is supposed to find).
    pub cluster_forget_prob: f64,
    /// Driver (`super`) events per year for rule pairs, concentrated in a
    /// season window.
    pub rule_super_events_per_year: f64,
    /// Probability a driver event also fires the dependent (`sub`)
    /// property (keeps the rule asymmetric: sub ⇒ super, not vice versa).
    pub rule_sub_prob: f64,
    /// Fraction of entities that carry one *page-specific* correlated pair
    /// — two properties that co-change only on this page (the paper's
    /// Beale-family example). These are visible to the field-correlation
    /// search but not minable as template-level rules, which is what keeps
    /// the two predictors' prediction sets only partially overlapping
    /// (§5.3.4).
    pub page_pair_fraction: f64,
    /// Co-change events per year of a page-specific pair.
    pub page_pair_events_per_year: f64,
    /// Probability the `super` update is forgotten when `sub` fired.
    pub rule_forget_prob: f64,
    /// Seasonal burst: changes per burst range.
    pub seasonal_burst_changes: (usize, usize),
    /// Daily churn probability per day (while the entity is alive and the
    /// churn process is in an on-season).
    pub churn_daily_prob: f64,
    /// Fraction of a churn template's entities whose churn counter is
    /// actively maintained (independent of the other special processes —
    /// running shows attract dedicated editors).
    pub churn_entity_fraction: f64,
    /// Probability a churn field's show is cancelled at some point — the
    /// counter stops for good, but the threshold baseline keeps
    /// predicting it. This (together with between-season hiatuses) is why
    /// the paper's threshold baseline stays below the precision target.
    pub churn_cancel_prob: f64,

    // ----- noise -----
    /// Probability an update event receives 1–3 extra same-day edits
    /// (vandalism / fix-ups); drives the day-deduplication statistic.
    pub same_day_extra_prob: f64,
    /// Probability a field experiences one add/remove war (same-day
    /// delete + create churn) during its life.
    pub add_remove_war_prob: f64,
    /// Probability any single change is flagged bot-reverted
    /// (paper: 0.008 %).
    pub bot_revert_prob: f64,
    /// Probability a non-static field is deleted during the corpus.
    pub field_delete_prob: f64,
    /// Probability a static field is deleted during the corpus.
    pub static_delete_prob: f64,
    /// Probability a special-role field (cluster member, rule pair, churn)
    /// is deleted. Actively co-maintained fields rarely disappear; a high
    /// value here floods the correlation rules with dead partners and
    /// caps precision well below the paper's operating point.
    pub special_delete_prob: f64,
    /// Probability a deleted field is later re-created.
    pub recreate_prob: f64,
}

impl SynthConfig {
    /// Tiny preset for unit tests: a few hundred entities over a short
    /// span; generates in milliseconds.
    pub fn tiny() -> SynthConfig {
        SynthConfig {
            num_templates: 12,
            num_entities: 260,
            start: Date::from_ymd(2014, 1, 1).expect("valid"),
            // Densify the special processes so even a few hundred
            // entities exercise every predictor.
            special_entity_fraction: 0.15,
            page_pair_fraction: 0.06,
            churn_entity_fraction: 0.25,
            ..SynthConfig::small()
        }
    }

    /// Small preset (the default): full 2003–2019 span, ≈ 10 k entities,
    /// a few hundred thousand raw changes. Runs the full evaluation in
    /// seconds; suitable for CI.
    pub fn small() -> SynthConfig {
        SynthConfig {
            seed: 20230328, // EDBT 2023 opening day
            start: Date::WIKI_HISTORY_START,
            end: Date::WIKI_HISTORY_END.plus_days(1),
            num_templates: 120,
            num_entities: 11_000,
            props_per_template: (14, 48),
            static_fraction: 0.90,
            cluster_template_fraction: 0.35,
            cluster_size: (2, 4),
            rule_pair_template_fraction: 0.35,
            seasonal_template_fraction: 0.30,
            churn_template_fraction: 0.04,
            special_entity_fraction: 0.011,
            sessions_per_year: 0.62,
            session_touch_prob: (0.10, 0.70),
            cluster_events_per_year: 2.5,
            cluster_forget_prob: 0.04,
            rule_super_events_per_year: 8.0,
            rule_sub_prob: 0.35,
            page_pair_fraction: 0.009,
            page_pair_events_per_year: 2.5,
            rule_forget_prob: 0.03,
            seasonal_burst_changes: (1, 3),
            churn_daily_prob: 0.30,
            churn_entity_fraction: 0.10,
            churn_cancel_prob: 0.5,
            same_day_extra_prob: 0.68,
            add_remove_war_prob: 0.035,
            bot_revert_prob: 0.00008,
            field_delete_prob: 0.45,
            static_delete_prob: 0.43,
            special_delete_prob: 0.04,
            recreate_prob: 0.30,
        }
    }

    /// Medium preset: ≈ 55 k entities, a few million raw changes. This is
    /// the scale the experiment binaries default to.
    pub fn medium() -> SynthConfig {
        SynthConfig {
            num_templates: 400,
            num_entities: 55_000,
            ..SynthConfig::small()
        }
    }

    /// Scale the entity and template counts by `factor`, keeping all rates
    /// unchanged.
    pub fn scaled(mut self, factor: f64) -> SynthConfig {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_entities = ((self.num_entities as f64 * factor) as usize).max(1);
        self.num_templates = ((self.num_templates as f64 * factor.sqrt()) as usize).max(1);
        self
    }

    /// Corpus duration in days.
    pub fn span_days(&self) -> u32 {
        (self.end - self.start).max(0) as u32
    }

    /// Validate parameter ranges; returns a human-readable complaint for
    /// the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.end <= self.start {
            return Err("end must be after start".into());
        }
        if self.num_templates == 0 || self.num_entities == 0 {
            return Err("need at least one template and one entity".into());
        }
        if self.props_per_template.0 < 2 || self.props_per_template.0 > self.props_per_template.1 {
            return Err("props_per_template must be an increasing range ≥ 2".into());
        }
        if self.cluster_size.0 < 2 || self.cluster_size.0 > self.cluster_size.1 {
            return Err("cluster_size must be an increasing range ≥ 2".into());
        }
        for (name, p) in [
            ("static_fraction", self.static_fraction),
            ("cluster_template_fraction", self.cluster_template_fraction),
            (
                "rule_pair_template_fraction",
                self.rule_pair_template_fraction,
            ),
            (
                "seasonal_template_fraction",
                self.seasonal_template_fraction,
            ),
            ("churn_template_fraction", self.churn_template_fraction),
            ("special_entity_fraction", self.special_entity_fraction),
            ("cluster_forget_prob", self.cluster_forget_prob),
            ("rule_sub_prob", self.rule_sub_prob),
            ("page_pair_fraction", self.page_pair_fraction),
            ("rule_forget_prob", self.rule_forget_prob),
            ("churn_daily_prob", self.churn_daily_prob),
            ("churn_cancel_prob", self.churn_cancel_prob),
            ("churn_entity_fraction", self.churn_entity_fraction),
            ("same_day_extra_prob", self.same_day_extra_prob),
            ("add_remove_war_prob", self.add_remove_war_prob),
            ("bot_revert_prob", self.bot_revert_prob),
            ("field_delete_prob", self.field_delete_prob),
            ("static_delete_prob", self.static_delete_prob),
            ("special_delete_prob", self.special_delete_prob),
            ("recreate_prob", self.recreate_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0, 1], got {p}"));
            }
        }
        let (lo, hi) = self.session_touch_prob;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err("session_touch_prob must be an increasing range in [0, 1]".into());
        }
        for (name, r) in [
            ("sessions_per_year", self.sessions_per_year),
            ("page_pair_events_per_year", self.page_pair_events_per_year),
            ("cluster_events_per_year", self.cluster_events_per_year),
            (
                "rule_super_events_per_year",
                self.rule_super_events_per_year,
            ),
        ] {
            if !r.is_finite() || r < 0.0 {
                return Err(format!("{name} must be a non-negative rate, got {r}"));
            }
        }
        Ok(())
    }
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SynthConfig::tiny().validate().unwrap();
        SynthConfig::small().validate().unwrap();
        SynthConfig::medium().validate().unwrap();
        assert_eq!(SynthConfig::default(), SynthConfig::small());
    }

    #[test]
    fn span_matches_paper() {
        // 2003-01-04 ..= 2019-09-02 is 6,086 days.
        assert_eq!(SynthConfig::small().span_days(), 6_086);
    }

    #[test]
    fn scaled_changes_counts_only() {
        let base = SynthConfig::small();
        let scaled = base.clone().scaled(0.5);
        assert_eq!(scaled.num_entities, 5_500);
        assert!(scaled.num_templates < base.num_templates);
        assert_eq!(scaled.seed, base.seed);
        assert_eq!(scaled.sessions_per_year, base.sessions_per_year);
    }

    #[test]
    fn validate_catches_bad_values() {
        let mut c = SynthConfig::small();
        c.static_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small();
        c.end = c.start;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small();
        c.session_touch_prob = (0.9, 0.1);
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small();
        c.props_per_template = (1, 5);
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small();
        c.sessions_per_year = -1.0;
        assert!(c.validate().is_err());
    }
}
