//! Corpus generation: instantiate every template's entities and simulate
//! their editing processes day by day.

use crate::config::SynthConfig;
use crate::dist::{poisson_process_days, uniform_range};
use crate::ground_truth::GroundTruth;
use crate::schema::{build_schemas, PropertyRole, TemplateSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wikistale_wikicube::{
    ChangeCube, ChangeCubeBuilder, ChangeFlags, ChangeKind, Date, EntityId, PropertyId,
};

/// A generated corpus: the raw change cube plus the generator's ground
/// truth about forgotten updates.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    /// The raw (unfiltered) change cube.
    pub cube: ChangeCube,
    /// Which updates were genuinely forgotten (true staleness).
    pub ground_truth: GroundTruth,
    /// The configuration that produced this corpus.
    pub config: SynthConfig,
}

/// Generate a corpus. Panics on an invalid configuration; use
/// [`try_generate`] to handle validation errors.
pub fn generate(config: &SynthConfig) -> SynthCorpus {
    try_generate(config).expect("invalid SynthConfig")
}

/// Generate a corpus, or report why the configuration is invalid.
pub fn try_generate(config: &SynthConfig) -> Result<SynthCorpus, String> {
    config.validate()?;
    let obs = wikistale_obs::MetricsRegistry::global();
    let _span = obs.span("synth");
    let mut master = StdRng::seed_from_u64(config.seed);
    let templates = build_schemas(config, &mut master);
    let span = config.span_days();

    let mut builder = ChangeCubeBuilder::new();
    let mut truth = GroundTruth::default();
    for (tid, template) in templates.iter().enumerate() {
        // Property ids are interned once per template.
        let prop_ids: Vec<PropertyId> = template
            .properties
            .iter()
            .map(|p| builder.property(&p.name))
            .collect();
        // Sports seasons of one template are aligned across its entities.
        let season_phase = {
            let mut r = StdRng::seed_from_u64(mix(config.seed, tid as u64, u64::MAX));
            r.random_range(0..300u32)
        };
        for e in 0..template.entity_count {
            let mut rng = StdRng::seed_from_u64(mix(config.seed, tid as u64, e as u64));
            let name = format!("synth-{tid}-{e}");
            let page = format!("Page {tid}-{e}");
            let entity = builder.entity(&name, &template.name, &page);
            generate_entity(
                config,
                template,
                &prop_ids,
                entity,
                season_phase,
                span,
                &mut rng,
                &mut builder,
                &mut truth,
            );
        }
    }
    truth.seal();
    let cube = builder.finish();
    obs.counter("synth/changes").add(cube.num_changes() as u64);
    obs.counter("synth/entities")
        .add(cube.num_entities() as u64);
    obs.counter("synth/forgotten_updates")
        .add(truth.len() as u64);
    Ok(SynthCorpus {
        cube,
        ground_truth: truth,
        config: config.clone(),
    })
}

/// SplitMix64-style mixing of the seed with template and entity indices,
/// so per-entity streams are independent of generation order.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The life of one field: alive from `birth`, possibly deleted, possibly
/// re-created.
#[derive(Debug, Clone, Copy)]
struct FieldLife {
    birth: u32,
    deleted_at: Option<u32>,
    recreated_at: Option<u32>,
}

impl FieldLife {
    fn alive_on(&self, day: u32) -> bool {
        if day < self.birth {
            return false;
        }
        match (self.deleted_at, self.recreated_at) {
            (Some(d), Some(r)) => day < d || day >= r,
            (Some(d), None) => day < d,
            _ => true,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_entity(
    config: &SynthConfig,
    template: &TemplateSpec,
    prop_ids: &[PropertyId],
    entity: EntityId,
    season_phase: u32,
    span: u32,
    rng: &mut StdRng,
    builder: &mut ChangeCubeBuilder,
    truth: &mut GroundTruth,
) {
    let birth = rng.random_range(0..(span as f64 * 0.8) as u32 + 1);
    let life_days = span - birth;
    let special = rng.random_bool(config.special_entity_fraction);
    let churn_active = rng.random_bool(config.churn_entity_fraction);

    // ---- per-entity shared event schedules ----
    let session_days: Vec<u32> = poisson_process_days(rng, config.sessions_per_year, life_days)
        .into_iter()
        .map(|d| d + birth)
        .collect();

    // Per-property update day lists.
    let mut updates: Vec<Vec<u32>> = vec![Vec::new(); template.properties.len()];

    // Cluster events: all members co-update, each may be forgotten.
    if special {
        let members = template.cluster_members(0);
        if members.len() >= 2 {
            for day in poisson_process_days(rng, config.cluster_events_per_year, life_days) {
                let day = day + birth;
                for &m in &members {
                    if rng.random_bool(config.cluster_forget_prob) {
                        truth.record(date(config, day), entity, prop_ids[m]);
                    } else {
                        updates[m].push(day);
                    }
                }
            }
        }
        // Rule pair: driver events in-season; dependent fires on a subset.
        if let (Some(sup), Some(sub)) = (template.rule_super(), template.rule_sub()) {
            for day in season_event_days(
                rng,
                config.rule_super_events_per_year,
                season_phase,
                birth,
                span,
            ) {
                let sub_fires = rng.random_bool(config.rule_sub_prob);
                if sub_fires {
                    updates[sub].push(day);
                    if rng.random_bool(config.rule_forget_prob) {
                        // `sub` changed but `super` was forgotten: exactly
                        // the staleness the sub ⇒ super rule detects.
                        truth.record(date(config, day), entity, prop_ids[sup]);
                    } else {
                        updates[sup].push(day);
                    }
                } else {
                    updates[sup].push(day);
                }
            }
        }
    }

    // Page-specific correlated pair (the Beale-family pattern, §3.2):
    // two of this entity's non-special properties co-change on a schedule
    // unique to this page. Template-wide confidence stays low, so the
    // association rules cannot mine it — only the per-page correlation
    // search can.
    let mut page_pair: Option<(usize, usize)> = None;
    // Only session properties are eligible. Special roles are covered by
    // template-level rules anyway, and a pair on otherwise-static
    // properties would be template-minable too: since nothing else ever
    // changes those properties, one page's co-changes dominate the
    // template-wide confidence. Session properties change on many pages
    // uncorrelated, which keeps the pair genuinely page-specific.
    let eligible: Vec<usize> = template
        .properties
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p.role, PropertyRole::Session { .. }))
        .map(|(i, _)| i)
        .collect();
    if eligible.len() >= 2 && rng.random_bool(config.page_pair_fraction) {
        let ai = rng.random_range(0..eligible.len());
        let mut bi = rng.random_range(0..eligible.len() - 1);
        if bi >= ai {
            bi += 1;
        }
        let (a, b) = (eligible[ai], eligible[bi]);
        page_pair = Some((a, b));
        for day in poisson_process_days(rng, config.page_pair_events_per_year, life_days) {
            let day = day + birth;
            for &m in &[a, b] {
                if rng.random_bool(config.cluster_forget_prob) {
                    truth.record(date(config, day), entity, prop_ids[m]);
                } else {
                    updates[m].push(day);
                }
            }
        }
    }

    for (i, prop) in template.properties.iter().enumerate() {
        match prop.role {
            PropertyRole::Static
            | PropertyRole::ClusterMember { .. }
            | PropertyRole::RuleSub
            | PropertyRole::RuleSuper => {}
            PropertyRole::Session { touch_prob } => {
                for &day in &session_days {
                    if rng.random_bool(touch_prob) {
                        updates[i].push(day);
                    }
                }
            }
            PropertyRole::Seasonal { phase } => {
                let mut year_start = 0u32;
                while year_start < span {
                    let burst = year_start + phase;
                    if burst >= birth && burst < span {
                        let k = uniform_range(rng, config.seasonal_burst_changes);
                        for _ in 0..k {
                            let day = burst + rng.random_range(0..30u32);
                            if day < span {
                                updates[i].push(day);
                            }
                        }
                    }
                    year_start += 365;
                }
            }
            PropertyRole::Churn => {
                if churn_active {
                    // Episode counters churn daily while a season airs,
                    // pause between seasons, and may stop for good when
                    // the show is cancelled — the irregularity that keeps
                    // the threshold baseline below the precision target.
                    let cancel_at = if rng.random_bool(config.churn_cancel_prob) {
                        birth + rng.random_range(1..=span - birth)
                    } else {
                        span
                    };
                    // Daily soaps run nearly year-round with short breaks;
                    // regular series take months off between seasons.
                    let (on_range, off_range) = if rng.random_bool(0.4) {
                        ((120u32, 300u32), (7u32, 21u32))
                    } else {
                        ((100, 280), (25, 80))
                    };
                    let mut day = birth;
                    let mut on_season = true;
                    let mut phase_left: u32 = rng.random_range(on_range.0..on_range.1);
                    while day < cancel_at {
                        if phase_left == 0 {
                            on_season = !on_season;
                            phase_left = if on_season {
                                rng.random_range(on_range.0..on_range.1)
                            } else {
                                rng.random_range(off_range.0..off_range.1)
                            };
                        }
                        if on_season && rng.random_bool(config.churn_daily_prob) {
                            updates[i].push(day);
                        }
                        day += 1;
                        phase_left -= 1;
                    }
                }
            }
        }
    }

    // ---- emit changes per field, applying life cycle and noise ----
    for (i, prop) in template.properties.iter().enumerate() {
        // Fields carrying a page-specific pair are actively maintained and
        // share the low deletion rate of the other special roles.
        let in_page_pair = page_pair.is_some_and(|(a, b)| i == a || i == b);
        let life = sample_life(config, rng, &prop.role, in_page_pair, birth, span);
        emit_field(
            config,
            rng,
            builder,
            entity,
            prop_ids[i],
            &life,
            updates[i].as_mut_slice(),
            span,
        );
    }
}

/// Event days of an annually recurring season: a ~140-day active window
/// each year, events Poisson-distributed inside it.
fn season_event_days(
    rng: &mut StdRng,
    events_per_year: f64,
    phase: u32,
    birth: u32,
    span: u32,
) -> Vec<u32> {
    const SEASON_LEN: u32 = 140;
    // Rate compressed into the window so the annual total matches.
    let window_rate = events_per_year * 365.25 / SEASON_LEN as f64;
    let mut days = Vec::new();
    let mut year_start = 0u32;
    while year_start < span {
        let start = year_start + phase;
        if start < span {
            for d in poisson_process_days(rng, window_rate, SEASON_LEN.min(span - start)) {
                let day = start + d;
                if day >= birth && day < span {
                    days.push(day);
                }
            }
        }
        year_start += 365;
    }
    days.sort_unstable();
    days
}

/// Sample a field's deletion / re-creation life cycle.
fn sample_life(
    config: &SynthConfig,
    rng: &mut StdRng,
    role: &PropertyRole,
    in_page_pair: bool,
    birth: u32,
    span: u32,
) -> FieldLife {
    let delete_prob = if role.is_special() || in_page_pair {
        config.special_delete_prob
    } else if role.is_updatable() {
        config.field_delete_prob
    } else {
        config.static_delete_prob
    };
    let mut life = FieldLife {
        birth,
        deleted_at: None,
        recreated_at: None,
    };
    // A field can only die if it has lived for at least a year.
    if span > birth + 366 && rng.random_bool(delete_prob) {
        let deleted_at = rng.random_range(birth + 365..span);
        life.deleted_at = Some(deleted_at);
        if rng.random_bool(config.recreate_prob) {
            let gap = rng.random_range(30..300u32);
            if deleted_at + gap < span {
                life.recreated_at = Some(deleted_at + gap);
            }
        }
    }
    life
}

/// Emit create / update / delete changes for one field.
#[allow(clippy::too_many_arguments)]
fn emit_field(
    config: &SynthConfig,
    rng: &mut StdRng,
    builder: &mut ChangeCubeBuilder,
    entity: EntityId,
    property: PropertyId,
    life: &FieldLife,
    update_days: &mut [u32],
    span: u32,
) {
    let mut counter = 0usize;
    let emit = |builder: &mut ChangeCubeBuilder,
                rng: &mut StdRng,
                day: u32,
                kind: ChangeKind,
                counter: &mut usize| {
        let flags = if rng.random_bool(config.bot_revert_prob) {
            ChangeFlags::BOT_REVERTED
        } else {
            ChangeFlags::NONE
        };
        let value = format!("u{}", *counter % 977);
        *counter += 1;
        builder.change_full(date(config, day), entity, property, &value, kind, flags);
    };

    emit(builder, rng, life.birth, ChangeKind::Create, &mut counter);

    update_days.sort_unstable();
    for &day in update_days.iter() {
        if day <= life.birth || !life.alive_on(day) {
            continue;
        }
        emit(builder, rng, day, ChangeKind::Update, &mut counter);
        // Vandalism / fix-up churn: extra same-day edits with other values.
        if rng.random_bool(config.same_day_extra_prob) {
            let extras = if rng.random_bool(0.4) { 2 } else { 1 };
            for _ in 0..extras {
                emit(builder, rng, day, ChangeKind::Update, &mut counter);
            }
        }
    }

    if let Some(deleted_at) = life.deleted_at {
        emit(builder, rng, deleted_at, ChangeKind::Delete, &mut counter);
        if let Some(recreated_at) = life.recreated_at {
            emit(builder, rng, recreated_at, ChangeKind::Create, &mut counter);
        }
    }

    // Add/remove war: a burst of same-day delete + create churn.
    if rng.random_bool(config.add_remove_war_prob) && span > life.birth + 2 {
        let day = rng.random_range(life.birth + 1..span);
        if life.alive_on(day) {
            let rounds = if rng.random_bool(0.5) { 2 } else { 1 };
            for _ in 0..rounds {
                emit(builder, rng, day, ChangeKind::Delete, &mut counter);
                emit(builder, rng, day, ChangeKind::Create, &mut counter);
            }
        }
    }
}

fn date(config: &SynthConfig, offset: u32) -> Date {
    config.start.plus_days(offset as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::CorpusStats;

    #[test]
    fn tiny_corpus_generates_and_is_deterministic() {
        let config = SynthConfig::tiny();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.cube.changes_vec(), b.cube.changes_vec());
        assert_eq!(a.ground_truth.forgotten(), b.ground_truth.forgotten());
        assert!(a.cube.num_changes() > 1_000, "{}", a.cube.num_changes());
        assert_eq!(a.cube.num_entities(), config.num_entities);
        assert_eq!(a.cube.num_templates(), config.num_templates);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = SynthConfig::tiny();
        let a = generate(&config);
        config.seed += 1;
        let b = generate(&config);
        assert_ne!(a.cube.changes_vec(), b.cube.changes_vec());
    }

    #[test]
    fn changes_stay_in_span() {
        let config = SynthConfig::tiny();
        let corpus = generate(&config);
        let span = corpus.cube.time_span().unwrap();
        assert!(span.start() >= config.start);
        assert!(span.end() <= config.end);
    }

    #[test]
    fn composition_is_wikipedia_shaped() {
        let config = SynthConfig::tiny();
        let corpus = generate(&config);
        let stats = CorpusStats::compute(&corpus.cube);
        // Creations dominate; deletions are a sizable minority; some
        // same-day duplicates and (rarely at this scale) bot reverts.
        assert!(
            stats.create_fraction() > 0.30,
            "creates {:.3}",
            stats.create_fraction()
        );
        assert!(
            stats.delete_fraction() > 0.05,
            "deletes {:.3}",
            stats.delete_fraction()
        );
        // The generator emits same-day churn, but cube canonicalization
        // collapses it at build time (last value wins) — the finished
        // corpus must therefore be duplicate-free.
        assert_eq!(stats.same_day_duplicates, 0);
        assert!(stats.distinct_fields > 1_000);
    }

    #[test]
    fn ground_truth_points_at_real_fields() {
        let corpus = generate(&SynthConfig::tiny());
        assert!(
            !corpus.ground_truth.is_empty(),
            "forgetting processes should fire at this scale"
        );
        for f in corpus.ground_truth.forgotten().iter().take(50) {
            // Ids must resolve against the cube; any property can be part
            // of a page-specific pair, so only cluster/rule forgets have a
            // constrained name.
            let name = corpus.cube.property_name(f.field.property);
            assert!(!name.is_empty());
        }
        // Cluster and rule-driver forgets must both occur at this scale.
        let names: Vec<&str> = corpus
            .ground_truth
            .forgotten()
            .iter()
            .map(|f| corpus.cube.property_name(f.field.property))
            .collect();
        assert!(names.iter().any(|n| n.starts_with("cluster0_part")));
    }

    #[test]
    fn field_life_alive_logic() {
        let life = FieldLife {
            birth: 10,
            deleted_at: Some(100),
            recreated_at: Some(150),
        };
        assert!(!life.alive_on(5));
        assert!(life.alive_on(10));
        assert!(life.alive_on(99));
        assert!(!life.alive_on(100));
        assert!(!life.alive_on(149));
        assert!(life.alive_on(150));
        let never_deleted = FieldLife {
            birth: 0,
            deleted_at: None,
            recreated_at: None,
        };
        assert!(never_deleted.alive_on(9999));
    }

    #[test]
    fn mix_is_stable_and_spread() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 2));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn try_generate_rejects_invalid() {
        let mut config = SynthConfig::tiny();
        config.num_entities = 0;
        assert!(try_generate(&config).is_err());
    }
}
