//! # wikistale-synth
//!
//! A seeded, parameterized generator of synthetic Wikipedia-infobox change
//! corpora, substituting for the proprietary-scale 283 M-change export of
//! Bleifuß et al. (ICDE 2021) that Barth et al. (EDBT 2023) evaluate on.
//!
//! The generator reproduces the *population structure* the paper documents
//! rather than any particular page:
//!
//! * templates with Zipf-skewed entity counts and property schemas,
//! * a large static majority of fields (created once, never updated),
//! * page-level *maintenance sessions* that touch several fields of a page
//!   in a single edit (the reason same-page fields correlate at all),
//! * tightly coupled **correlated clusters** (home/away kit colors) with a
//!   small per-member *forget* probability — the signal of §3.2,
//! * template-wide **asymmetric rule pairs** (`ko ⇒ wins`,
//!   `matches ⇒ total goals`) — the signal of §3.3,
//! * seasonal burst fields, rare daily-churn fields (soap-opera episode
//!   counters), and independent sparse fields,
//! * noise: creations (≈ 50 % of raw changes), deletions (≈ 20 %),
//!   same-day vandalism churn, add/remove wars, and bot-reverted edits
//!   (≈ 0.008 %) — exactly the mass the paper's filter pipeline removes.
//!
//! Every forgotten co-update is recorded in [`GroundTruth`], so examples
//! can demonstrate *true* staleness (the §5.4 analysis) rather than only
//! the observed-change evaluation.
//!
//! Generation is deterministic for a given [`SynthConfig`] (including its
//! `seed`).
//!
//! ## Example
//!
//! ```
//! use wikistale_synth::{SynthConfig, generate};
//!
//! let corpus = generate(&SynthConfig::tiny());
//! assert!(corpus.cube.num_changes() > 1_000);
//! assert_eq!(generate(&SynthConfig::tiny()).cube.num_changes(),
//!            corpus.cube.num_changes()); // deterministic
//! ```

pub mod config;
pub mod dist;
pub mod fault;
pub mod generate;
pub mod ground_truth;
pub mod scenario;
pub mod schema;

pub use config::SynthConfig;
pub use fault::{FaultInjector, TextFault, TEXT_FAULTS};
pub use generate::{generate, try_generate, SynthCorpus};
pub use ground_truth::{ForgottenUpdate, GroundTruth};
pub use scenario::Scenario;
