//! Scripted corpora: hand-authored change histories with exact dates.
//!
//! The generator ([`crate::generate()`]) builds statistically realistic
//! corpora; tests and case studies often need the opposite — a corpus
//! whose every change is placed deliberately (the §5.4 Handball-Bundesliga
//! reconstruction, predictor unit fixtures, documentation examples).
//! [`Scenario`] wraps the cube builder with a vocabulary matching how the
//! paper talks about change patterns: independent updates, co-updating
//! clusters with forgotten members, and asymmetric driver/dependent pairs.
//!
//! ```
//! use wikistale_synth::scenario::Scenario;
//! use wikistale_wikicube::Date;
//!
//! let mut s = Scenario::new();
//! let club = s.entity("FC Example", "infobox club", "FC Example");
//! let d = |n| Date::EPOCH + n;
//! // Kit colors co-update; the away color is forgotten on day 60.
//! s.co_updates(club, &["home_color", "away_color"], &[d(0), d(30), d(90)]);
//! s.update(club, "home_color", d(60));
//! s.forget(club, "away_color", d(60));
//! let corpus = s.finish();
//! assert_eq!(corpus.cube.num_changes(), 7);
//! assert_eq!(corpus.ground_truth.len(), 1);
//! ```

use crate::ground_truth::GroundTruth;
use crate::SynthCorpus;
use wikistale_wikicube::{ChangeCubeBuilder, ChangeKind, Date, EntityId, FxHashMap, PropertyId};

/// A scripted corpus under construction.
#[derive(Debug, Default)]
pub struct Scenario {
    builder: ChangeCubeBuilder,
    truth: GroundTruth,
    /// Per-field running counters for generated values.
    counters: FxHashMap<(EntityId, PropertyId), u64>,
}

impl Scenario {
    /// Start an empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Register (or look up) an infobox.
    pub fn entity(&mut self, name: &str, template: &str, page: &str) -> EntityId {
        self.builder.entity(name, template, page)
    }

    /// One update to `prop` on `day` with an auto-generated value.
    pub fn update(&mut self, entity: EntityId, prop: &str, day: Date) -> &mut Self {
        let value = self.next_value(entity, prop);
        let property = self.builder.property(prop);
        self.builder
            .change(day, entity, property, &value, ChangeKind::Update);
        self
    }

    /// One update with an explicit value (for value-sensitive scenarios
    /// like the counter-anomaly case study).
    pub fn update_with_value(
        &mut self,
        entity: EntityId,
        prop: &str,
        day: Date,
        value: &str,
    ) -> &mut Self {
        let property = self.builder.property(prop);
        self.builder
            .change(day, entity, property, value, ChangeKind::Update);
        self
    }

    /// Updates to `prop` on every day in `days`.
    pub fn updates(&mut self, entity: EntityId, prop: &str, days: &[Date]) -> &mut Self {
        for &day in days {
            self.update(entity, prop, day);
        }
        self
    }

    /// All `props` co-update on every day in `days` — the §3.2 cluster
    /// pattern.
    pub fn co_updates(&mut self, entity: EntityId, props: &[&str], days: &[Date]) -> &mut Self {
        for &day in days {
            for prop in props {
                self.update(entity, prop, day);
            }
        }
        self
    }

    /// Record that `prop` *should* have changed on `day` but did not — the
    /// ground truth a staleness detector is meant to find.
    pub fn forget(&mut self, entity: EntityId, prop: &str, day: Date) -> &mut Self {
        let property = self.builder.property(prop);
        self.truth.record(day, entity, property);
        self
    }

    /// The §3.3 asymmetric pattern: `driver` changes on every day of
    /// `driver_days`; `dependent` co-changes only on the days in
    /// `dependent_days` (which must be a subset to make the rule
    /// `dependent ⇒ driver` hold).
    pub fn driver_pair(
        &mut self,
        entity: EntityId,
        driver: &str,
        dependent: &str,
        driver_days: &[Date],
        dependent_days: &[Date],
    ) -> &mut Self {
        self.updates(entity, driver, driver_days);
        self.updates(entity, dependent, dependent_days);
        self
    }

    /// A create marker for a field (scenarios usually only need updates;
    /// creates matter when exercising the filter pipeline).
    pub fn create(&mut self, entity: EntityId, prop: &str, day: Date) -> &mut Self {
        let value = self.next_value(entity, prop);
        let property = self.builder.property(prop);
        self.builder
            .change(day, entity, property, &value, ChangeKind::Create);
        self
    }

    /// A delete marker for a field.
    pub fn delete(&mut self, entity: EntityId, prop: &str, day: Date) -> &mut Self {
        let property = self.builder.property(prop);
        self.builder
            .change(day, entity, property, "", ChangeKind::Delete);
        self
    }

    /// Finalize into a corpus (cube + ground truth). The config slot holds
    /// the tiny preset for provenance; scripted corpora have no generator
    /// parameters of their own.
    pub fn finish(mut self) -> SynthCorpus {
        self.truth.seal();
        SynthCorpus {
            cube: self.builder.finish(),
            ground_truth: self.truth,
            config: crate::SynthConfig::tiny(),
        }
    }

    fn next_value(&mut self, entity: EntityId, prop: &str) -> String {
        let property = self.builder.property(prop);
        let counter = self.counters.entry((entity, property)).or_insert(0);
        *counter += 1;
        format!("v{counter}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wikistale_wikicube::DateRange;

    fn d(n: i32) -> Date {
        Date::EPOCH + n
    }

    #[test]
    fn scripted_cluster_is_found_by_field_correlations() {
        let mut s = Scenario::new();
        let club = s.entity("FC", "infobox club", "FC Page");
        let days: Vec<Date> = (0..8).map(|k| d(k * 40)).collect();
        s.co_updates(club, &["home_color", "away_color"], &days);
        s.updates(club, "stadium", &[d(13), d(77), d(191), d(301), d(411)]);
        let corpus = s.finish();
        assert_eq!(corpus.cube.num_changes(), 8 * 2 + 5);
        // Values increment independently per field.
        let c0 = corpus.cube.change_at(0);
        assert_eq!(corpus.cube.value_text(c0.value), "v1");
    }

    #[test]
    fn forget_records_ground_truth() {
        let mut s = Scenario::new();
        let e = s.entity("E", "t", "P");
        s.update(e, "a", d(5));
        s.forget(e, "b", d(5));
        let corpus = s.finish();
        assert_eq!(corpus.ground_truth.len(), 1);
        let f = corpus.ground_truth.forgotten()[0];
        assert_eq!(f.day, d(5));
        assert_eq!(corpus.cube.property_name(f.field.property), "b");
        assert!(corpus.ground_truth.was_stale_in(f.field, d(0), d(10)));
    }

    #[test]
    fn driver_pair_is_asymmetric() {
        let mut s = Scenario::new();
        let boxer = s.entity("Boxer", "infobox boxer", "Boxer Page");
        let wins: Vec<Date> = (0..10).map(|k| d(k * 20)).collect();
        let kos: Vec<Date> = wins.iter().step_by(2).copied().collect();
        s.driver_pair(boxer, "wins", "ko", &wins, &kos);
        let corpus = s.finish();
        let cube = &corpus.cube;
        let count = |name: &str| {
            let p = cube.property_id(name).unwrap();
            cube.iter_changes().filter(|c| c.property == p).count()
        };
        assert_eq!(count("wins"), 10);
        assert_eq!(count("ko"), 5);
    }

    #[test]
    fn create_update_delete_lifecycle() {
        let mut s = Scenario::new();
        let e = s.entity("E", "t", "P");
        s.create(e, "p", d(0));
        s.update(e, "p", d(10));
        s.delete(e, "p", d(20));
        let corpus = s.finish();
        let kinds: Vec<ChangeKind> = corpus.cube.iter_changes().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![ChangeKind::Create, ChangeKind::Update, ChangeKind::Delete]
        );
    }

    #[test]
    fn scenario_feeds_the_detector_stack() {
        // End to end: the scripted cluster trains a correlation rule and a
        // forgotten update gets flagged.
        use wikistale_core::predictor::{ChangePredictor, EvalData};
        use wikistale_core::predictors::{FieldCorrelation, FieldCorrelationParams};
        use wikistale_wikicube::CubeIndex;

        let mut s = Scenario::new();
        let club = s.entity("FC", "infobox club", "FC Page");
        let days: Vec<Date> = (0..10).map(|k| d(k * 30)).collect();
        s.co_updates(club, &["home", "away"], &days);
        // Day 300: home changes, away is forgotten.
        s.update(club, "home", d(300));
        s.forget(club, "away", d(300));
        let corpus = s.finish();

        let index = CubeIndex::build(&corpus.cube);
        let data = EvalData::new(&corpus.cube, &index);
        let fc = FieldCorrelation::train(
            &data,
            DateRange::new(d(0), d(295)),
            FieldCorrelationParams::default(),
        );
        assert_eq!(fc.num_rules(), 1);
        let window = DateRange::new(d(295), d(302));
        let set = fc.predict(&data, window, 7);
        let away = index
            .position(wikistale_wikicube::FieldId::new(
                club,
                corpus.cube.property_id("away").unwrap(),
            ))
            .unwrap() as u32;
        assert!(set.items().iter().any(|&(p, _)| p == away));
        assert!(corpus.ground_truth.was_stale_in(
            index.field(away as usize),
            window.start(),
            window.end()
        ));
    }
}
