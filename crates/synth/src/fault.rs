//! Seeded fault injection for the chaos test harness.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. [`FaultInjector`] produces the corruption the ingest and
//! persistence layers must survive — bit rot, truncated downloads,
//! mid-write crashes, mangled markup — *deterministically*: the same
//! seed always yields the same fault, so a chaos-test failure is
//! reproducible from its seed alone.
//!
//! The injector never decides what "should" happen; it only breaks
//! things. The chaos suites assert the system's contract: every injected
//! fault ends in a typed error or a quarantine entry, never a panic and
//! never a silently wrong answer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ways to break a well-formed piece of XML/wikitext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFault {
    /// Delete one closing tag (`</…>`), unbalancing the markup.
    DropClosingTag,
    /// Overwrite a digit of a timestamp with a letter.
    MangleTimestamp,
    /// Cut the text off somewhere in the middle, as a dropped
    /// connection would.
    TruncateMiddle,
    /// Splice printable garbage into the middle.
    SpliceGarbage,
}

/// All text fault modes, for exhaustive chaos sweeps.
pub const TEXT_FAULTS: [TextFault; 4] = [
    TextFault::DropClosingTag,
    TextFault::MangleTimestamp,
    TextFault::TruncateMiddle,
    TextFault::SpliceGarbage,
];

/// A deterministic source of corruption.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// An injector whose entire fault sequence is determined by `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Flip `n` randomly chosen bits in place (positions may repeat, so
    /// the effective flip count is ≤ `n`). No-op on empty data.
    pub fn flip_bits(&mut self, data: &mut [u8], n: usize) {
        if data.is_empty() {
            return;
        }
        for _ in 0..n {
            let byte = self.rng.random_range(0..data.len());
            let bit = self.rng.random_range(0..8u32);
            data[byte] ^= 1 << bit;
        }
    }

    /// Truncate to a strictly shorter random length (possibly empty) —
    /// the shape of an interrupted download. No-op on empty data.
    pub fn truncate(&mut self, data: &mut Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let keep = self.rng.random_range(0..data.len());
        data.truncate(keep);
    }

    /// Insert 1..=`max_len` random bytes at a random position.
    pub fn insert_garbage(&mut self, data: &mut Vec<u8>, max_len: usize) {
        let n = self.rng.random_range(1..=max_len.max(1));
        let at = self.rng.random_range(0..=data.len());
        let garbage: Vec<u8> = (0..n)
            .map(|_| self.rng.random_range(0..=255u32) as u8)
            .collect();
        data.splice(at..at, garbage);
    }

    /// What would have reached disk if the process died mid-write: a
    /// strict prefix of `data` (possibly empty).
    pub fn partial_write(&mut self, data: &[u8]) -> Vec<u8> {
        if data.is_empty() {
            return Vec::new();
        }
        let written = self.rng.random_range(0..data.len());
        data[..written].to_vec()
    }

    /// Apply one [`TextFault`] to `text`, keeping it valid UTF-8. Modes
    /// whose target pattern is absent fall back to truncation, so the
    /// text always comes back changed (unless it was empty).
    pub fn corrupt_text(&mut self, text: &mut String, fault: TextFault) {
        if text.is_empty() {
            return;
        }
        match fault {
            TextFault::DropClosingTag => {
                let closers: Vec<usize> = text.match_indices("</").map(|(i, _)| i).collect();
                if closers.is_empty() {
                    return self.corrupt_text(text, TextFault::TruncateMiddle);
                }
                let start = closers[self.rng.random_range(0..closers.len())];
                let end = text[start..]
                    .find('>')
                    .map(|rel| start + rel + 1)
                    .unwrap_or(text.len());
                text.replace_range(start..end, "");
            }
            TextFault::MangleTimestamp => {
                // Timestamps look like 2019-01-01T…; hit the first digit
                // after a "<timestamp>" if there is one.
                let Some(at) = text.find("<timestamp>") else {
                    return self.corrupt_text(text, TextFault::TruncateMiddle);
                };
                let digit = text[at..]
                    .char_indices()
                    .find(|(_, c)| c.is_ascii_digit())
                    .map(|(i, _)| at + i);
                match digit {
                    Some(i) => text.replace_range(i..i + 1, "x"),
                    None => self.corrupt_text(text, TextFault::TruncateMiddle),
                }
            }
            TextFault::TruncateMiddle => {
                let cut = self.rng.random_range(0..text.len());
                let boundary = (0..=cut)
                    .rev()
                    .find(|&i| text.is_char_boundary(i))
                    .unwrap_or(0);
                text.truncate(boundary);
            }
            TextFault::SpliceGarbage => {
                let at = loop {
                    let i = self.rng.random_range(0..=text.len());
                    if text.is_char_boundary(i) {
                        break i;
                    }
                };
                let n = self.rng.random_range(1..=24usize);
                let garbage: String = (0..n)
                    .map(|_| (self.rng.random_range(33..=126u32) as u8) as char)
                    .collect();
                text.insert_str(at, &garbage);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        (0..256u32).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultInjector::new(99);
        let mut b = FaultInjector::new(99);
        let (mut da, mut db) = (sample_bytes(), sample_bytes());
        a.flip_bits(&mut da, 5);
        b.flip_bits(&mut db, 5);
        assert_eq!(da, db);
        a.truncate(&mut da);
        b.truncate(&mut db);
        assert_eq!(da, db);
        assert_eq!(a.partial_write(&da), b.partial_write(&db));
        let (mut ta, mut tb) = (
            "<a><timestamp>2019</timestamp></a>".to_owned(),
            String::new(),
        );
        tb.clone_from(&ta);
        a.corrupt_text(&mut ta, TextFault::SpliceGarbage);
        b.corrupt_text(&mut tb, TextFault::SpliceGarbage);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let (mut da, mut db) = (sample_bytes(), sample_bytes());
        FaultInjector::new(1).flip_bits(&mut da, 8);
        FaultInjector::new(2).flip_bits(&mut db, 8);
        assert_ne!(da, db);
    }

    #[test]
    fn flip_bits_changes_at_most_n_bits() {
        let original = sample_bytes();
        let mut data = original.clone();
        FaultInjector::new(3).flip_bits(&mut data, 4);
        let flipped: u32 = original
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=4).contains(&flipped), "{flipped} bits flipped");
    }

    #[test]
    fn truncate_and_partial_write_shrink() {
        let original = sample_bytes();
        let mut data = original.clone();
        let mut inj = FaultInjector::new(4);
        inj.truncate(&mut data);
        assert!(data.len() < original.len());
        assert_eq!(&original[..data.len()], &data[..]);
        let partial = inj.partial_write(&original);
        assert!(partial.len() < original.len());
        assert_eq!(&original[..partial.len()], &partial[..]);
    }

    #[test]
    fn insert_garbage_grows() {
        let mut data = sample_bytes();
        FaultInjector::new(5).insert_garbage(&mut data, 16);
        assert!(data.len() > 256 && data.len() <= 256 + 16);
    }

    #[test]
    fn every_text_fault_changes_valid_xml_and_keeps_utf8() {
        let xml = "<page><title>Tïtle</title><revision>\
                   <timestamp>2019-01-01T00:00:00Z</timestamp>\
                   <text>{{Infobox x | a = 1}}</text></revision></page>";
        for (i, &fault) in TEXT_FAULTS.iter().enumerate() {
            let mut text = xml.to_owned();
            FaultInjector::new(42 + i as u64).corrupt_text(&mut text, fault);
            assert_ne!(text, xml, "{fault:?} left the text untouched");
            assert!(std::str::from_utf8(text.as_bytes()).is_ok());
        }
    }

    #[test]
    fn faults_on_empty_inputs_are_noops() {
        let mut inj = FaultInjector::new(6);
        let mut empty: Vec<u8> = Vec::new();
        inj.flip_bits(&mut empty, 3);
        inj.truncate(&mut empty);
        assert!(empty.is_empty());
        assert!(inj.partial_write(&[]).is_empty());
        let mut s = String::new();
        inj.corrupt_text(&mut s, TextFault::TruncateMiddle);
        assert!(s.is_empty());
    }
}
