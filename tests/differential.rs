//! Serial-vs-parallel differential suite.
//!
//! The execution layer (`wikistale-exec`) promises that artifact bytes
//! are a pure function of the input and the per-call-site chunk size —
//! never of the worker count or the scheduling order. This suite pins
//! that promise for every parallelized stage: cube building (sort +
//! index), Apriori support counting, field-correlation pairing, truth
//! sets / prediction sets, and the final experiment report, across
//! seeds × thread counts {1, 2, 4, 7} × chunk sizes including the
//! adversarial ones (1, len−1, > len).
//!
//! In-process tests pin the global configuration with
//! [`wikistale_exec::override_scope`], whose guard also holds a global
//! lock — the cargo test runner executes tests of this binary
//! concurrently, and the thread/chunk overrides are process-wide.
//! Subprocess tests (the `wikistale` binary) need no lock: each child
//! resolves its own `--threads`.
//!
//! Reproducing a failure: every in-process case states its seed and
//! (threads, chunk) pair in the assertion message; proptest cases
//! re-run exactly with `PROPTEST_CASE=<n>` (see vendor/README.md).

use proptest::prelude::*;
use std::path::PathBuf;
use std::process::{Command, Output};
use wikistale_apriori::{frequent_itemsets, Support, TransactionSet};
use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictors::{FieldCorrelation, FieldCorrelationParams};
use wikistale_core::report;
use wikistale_core::split::EvalSplit;
use wikistale_core::{truth_set, EvalData};
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::{binio, ChangeCube, ChangeCubeBuilder, ChangeKind, CubeIndex, Date};

/// Thread counts the issue pins: serial, even, the machine default, odd.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Run `f` with a pinned (threads, chunk override) configuration.
/// `chunk == 0` keeps each call site's own chunk size.
fn with_exec<T>(threads: usize, chunk: usize, f: impl FnOnce() -> T) -> T {
    let _guard = wikistale_exec::override_scope(threads, chunk);
    f()
}

/// The adversarial chunk sizes for an input of length `len`: default,
/// single-element chunks, one-short-of-everything, more than everything.
fn adversarial_chunks(len: usize) -> Vec<usize> {
    vec![0, 1, len.saturating_sub(1).max(1), len + 7]
}

fn wikistale(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wikistale-diff-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// An unsorted batch of change rows exercising the parallel stable sort
/// (same-day same-slot duplicates included, so last-wins dedup order
/// matters).
fn build_cube(rows: &[(i32, usize, usize, u8, String)]) -> ChangeCube {
    let mut b = ChangeCubeBuilder::new();
    let entities: Vec<_> = (0..6)
        .map(|i| {
            b.entity(
                &format!("e{i}"),
                &format!("t{}", i % 3),
                &format!("pg{}", i % 4),
            )
        })
        .collect();
    let props: Vec<_> = (0..5).map(|i| b.property(&format!("p{i}"))).collect();
    for (day, e, p, kind, value) in rows {
        let kind = match kind % 3 {
            0 => ChangeKind::Create,
            1 => ChangeKind::Update,
            _ => ChangeKind::Delete,
        };
        b.change(
            Date::EPOCH + *day,
            entities[e % entities.len()],
            props[p % props.len()],
            value,
            kind,
        );
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stage 0, the engine itself: fixed chunking partitions identically
    /// for every thread count, including adversarial chunk sizes.
    #[test]
    fn exec_chunk_results_independent_of_threads(
        items in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        for chunk in adversarial_chunks(items.len()) {
            let effective = if chunk == 0 { 16 } else { chunk };
            let reference: Vec<u64> = items
                .chunks(effective)
                .map(|c| c.iter().sum::<u64>())
                .collect();
            for threads in THREADS {
                let got = with_exec(threads, 0, || {
                    wikistale_exec::par_chunks("diff_exec", &items, effective, |c| {
                        c.iter().sum::<u64>()
                    })
                });
                prop_assert_eq!(
                    &got, &reference,
                    "threads={} chunk={}", threads, effective
                );
            }
        }
    }

    /// Stage 1, cube building: the parallel chunked stable sort + k-way
    /// merge in `from_parts` must reproduce the serial stable sort bit
    /// for bit — including the last-wins dedup of same-day duplicates.
    #[test]
    fn cube_bytes_independent_of_threads(
        rows in proptest::collection::vec(
            (0i32..1_500, 0usize..6, 0usize..5, 0u8..3, "[a-z0-9]{0,6}"),
            1..200,
        ),
    ) {
        let reference = with_exec(1, 0, || binio::encode(&build_cube(&rows)));
        for chunk in adversarial_chunks(rows.len()) {
            for threads in [2, 4, 7] {
                let got = with_exec(threads, chunk, || binio::encode(&build_cube(&rows)));
                prop_assert_eq!(
                    &got, &reference,
                    "threads={} chunk={}", threads, chunk
                );
            }
        }
    }

    /// Stage 2, Apriori: sharded support counting merges to the exact
    /// serial counts for every thread count and chunking.
    #[test]
    fn mined_itemsets_independent_of_threads(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 0..8),
            1..60,
        ),
        support in 1u64..4,
    ) {
        let mut builder = TransactionSet::builder();
        for row in &rows {
            let mut items = row.clone();
            items.sort_unstable();
            items.dedup();
            builder.push(items.into_iter());
        }
        let ts = builder.finish();
        let reference = with_exec(1, 0, || {
            frequent_itemsets(&ts, Support::Count(support), 4)
        });
        for chunk in adversarial_chunks(ts.len()) {
            for threads in [2, 4, 7] {
                let got = with_exec(threads, chunk, || {
                    frequent_itemsets(&ts, Support::Count(support), 4)
                });
                prop_assert_eq!(
                    &got, &reference,
                    "threads={} chunk={}", threads, chunk
                );
            }
        }
    }
}

/// Stage 1b, the full synth → filter path through the binary format:
/// generated and filtered cube bytes across seeds × threads × chunks.
#[test]
fn synth_and_filter_bytes_independent_of_threads() {
    for seed in [1u64, 7, 42] {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        let reference = with_exec(1, 0, || {
            let corpus = generate(&config);
            let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
            (binio::encode(&corpus.cube), binio::encode(&filtered))
        });
        for (threads, chunk) in [(2, 0), (4, 0), (7, 0), (2, 1), (4, 13), (7, 1_000_000)] {
            let got = with_exec(threads, chunk, || {
                let corpus = generate(&config);
                let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
                (binio::encode(&corpus.cube), binio::encode(&filtered))
            });
            assert_eq!(
                got, reference,
                "seed={seed} threads={threads} chunk={chunk}"
            );
        }
    }
}

/// Stage 3, field correlation: the trained partner lists (the model
/// itself, not just its predictions) across threads × chunks.
#[test]
fn correlation_partners_independent_of_threads() {
    for seed in [3u64, 11] {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        let corpus = generate(&config);
        let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
        let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
        let partners_at = |threads: usize, chunk: usize| {
            with_exec(threads, chunk, || {
                let index = CubeIndex::build(&filtered);
                let data = EvalData::new(&filtered, &index);
                let fc =
                    FieldCorrelation::train(&data, split.train, FieldCorrelationParams::default());
                let lists: Vec<Vec<u32>> = (0..index.num_fields())
                    .map(|pos| fc.partners_of(pos as u32).to_vec())
                    .collect();
                (fc.num_rules(), fc.num_correlated_fields(), lists)
            })
        };
        let reference = partners_at(1, 0);
        for (threads, chunk) in [(2, 0), (4, 1), (7, 13), (4, 1_000_000)] {
            assert_eq!(
                partners_at(threads, chunk),
                reference,
                "seed={seed} threads={threads} chunk={chunk}"
            );
        }
    }
}

/// Stage 4, the evaluation sweep: truth sets, every granularity's
/// prediction sets (via PaperResults equality), and the rendered report
/// across threads × chunks.
#[test]
fn evaluation_results_independent_of_threads() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let evaluate_at = |threads: usize, chunk: usize| {
        with_exec(threads, chunk, || {
            let index = CubeIndex::build(&filtered);
            let truth = truth_set(&index, split.test, 7);
            let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
            let rendered = format!(
                "{}\n{}\n{}",
                report::render_table1(&results),
                report::render_overlap(&results),
                report::render_figure3(&results)
            );
            (truth.items().to_vec(), results, rendered)
        })
    };
    let reference = evaluate_at(1, 0);
    for (threads, chunk) in [(2, 0), (4, 0), (7, 0), (2, 1), (4, 97)] {
        let got = evaluate_at(threads, chunk);
        assert_eq!(got.0, reference.0, "truth threads={threads} chunk={chunk}");
        assert_eq!(
            got.1, reference.1,
            "results threads={threads} chunk={chunk}"
        );
        assert_eq!(got.2, reference.2, "report threads={threads} chunk={chunk}");
    }
}

/// CLI end to end: `experiment` stdout and checkpoint artifact bytes are
/// identical at every `--threads` value.
#[test]
fn cli_experiment_stdout_and_artifacts_independent_of_threads() {
    let dir = tmpdir("artifacts");
    let run_at = |threads: &str, sub: &str| {
        let ckpt = dir.join(sub);
        let ckpt = ckpt.to_str().unwrap().to_owned();
        let out = wikistale(&[
            "experiment",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--threads",
            threads,
            "--checkpoint-dir",
            &ckpt,
        ]);
        assert!(out.status.success(), "threads={threads}: {out:?}");
        (stdout_of(&out), ckpt)
    };
    let (ref_stdout, ref_ckpt) = run_at("1", "t1");
    for threads in ["2", "4", "7"] {
        let (got_stdout, got_ckpt) = run_at(threads, &format!("t{threads}"));
        assert_eq!(
            got_stdout, ref_stdout,
            "stdout differs at --threads {threads}"
        );
        for stage in ["generate.wcube", "filter.wcube"] {
            let reference = std::fs::read(PathBuf::from(&ref_ckpt).join(stage)).unwrap();
            let got = std::fs::read(PathBuf::from(&got_ckpt).join(stage)).unwrap();
            assert_eq!(
                got, reference,
                "artifact {stage} differs at --threads {threads}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoints cross thread counts: artifacts written at `--threads 1`
/// resume under `--threads 4` and vice versa, reproducing the reference
/// stdout byte for byte. (The fingerprint deliberately excludes the
/// thread count.)
#[test]
fn checkpoint_resume_crosses_thread_counts() {
    let reference = {
        let out = wikistale(&["experiment", "--preset", "tiny", "--seed", "9"]);
        assert!(out.status.success());
        stdout_of(&out)
    };
    for (first, second) in [("1", "4"), ("4", "1")] {
        let dir = tmpdir(&format!("xresume-{first}-{second}"));
        let ckpt = dir.to_str().unwrap();
        let crashed = wikistale(&[
            "experiment",
            "--preset",
            "tiny",
            "--seed",
            "9",
            "--threads",
            first,
            "--checkpoint-dir",
            ckpt,
            "--crash-after",
            "train",
        ]);
        assert_eq!(crashed.status.code(), Some(42), "expected simulated crash");
        let resumed = wikistale(&[
            "experiment",
            "--preset",
            "tiny",
            "--seed",
            "9",
            "--threads",
            second,
            "--checkpoint-dir",
            ckpt,
            "--resume",
        ]);
        assert!(resumed.status.success(), "{resumed:?}");
        let err = String::from_utf8_lossy(&resumed.stderr).into_owned();
        assert!(
            err.contains("resume: reusing checkpointed"),
            "resume did not reuse artifacts: {err}"
        );
        assert_eq!(
            stdout_of(&resumed),
            reference,
            "--threads {first} checkpoint resumed at --threads {second} diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// `bench` is itself a differential check (it refuses to write a report
/// when serial and parallel results diverge) — run it end to end.
#[test]
fn bench_subcommand_verifies_and_reports() {
    let dir = tmpdir("bench");
    let out_path = dir.join("BENCH_parallel.json");
    let out = wikistale(&[
        "bench",
        "--preset",
        "tiny",
        "--seed",
        "3",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let report = std::fs::read_to_string(&out_path).unwrap();
    wikistale_obs::json::validate(&report).expect("bench report is valid JSON");
    assert!(report.contains("\"identical_results\": true"));
    assert!(report.contains("\"serial_wall_ms\""));
    assert!(report.contains("\"parallel_stages_ms\""));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Row-vs-columnar differential: the columnar change table and the shared
// delta-encoded day-list store against straight row-layout reference
// implementations, at --threads {1, 4}.

/// Reference day lists computed the pre-columnar way: scan every change
/// row and bucket its day under the (entity, property) field.
fn reference_day_lists(
    cube: &ChangeCube,
) -> std::collections::BTreeMap<wikistale_wikicube::FieldId, Vec<Date>> {
    let mut map: std::collections::BTreeMap<wikistale_wikicube::FieldId, Vec<Date>> =
        std::collections::BTreeMap::new();
    for c in cube.iter_changes() {
        let days = map.entry(c.field()).or_default();
        if days.last() != Some(&c.day) {
            days.push(c.day);
        }
    }
    map
}

/// The shared day-list store decodes to exactly the day lists a row scan
/// produces — fields, order, and every day — at every thread count.
#[test]
fn day_list_store_matches_row_scan() {
    for seed in [2u64, 13] {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        for threads in [1usize, 4] {
            let (raw, filtered) = with_exec(threads, 0, || {
                let corpus = generate(&config);
                let filtered = FilterPipeline::paper().apply(&corpus.cube).0;
                (corpus.cube, filtered)
            });
            for cube in [&raw, &filtered] {
                let reference = reference_day_lists(cube);
                let store = cube.day_lists();
                assert_eq!(store.num_fields(), reference.len(), "threads={threads}");
                for (pos, field, list) in store.iter() {
                    let expected = &reference[&field];
                    assert_eq!(
                        &list.to_vec(),
                        expected,
                        "seed={seed} threads={threads} field #{pos}"
                    );
                    assert_eq!(list.len(), expected.len());
                    assert_eq!(list.first(), expected.first().copied());
                    assert_eq!(list.last(), expected.last().copied());
                }
            }
        }
    }
}

/// Rebuilding a cube from its materialized rows (`changes_vec` →
/// `with_changes`, the row-layout construction path) reproduces the
/// binio artifact byte for byte, at --threads {1, 4}.
#[test]
fn columnar_rebuild_from_rows_is_byte_identical() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    for cube in [&corpus.cube, &filtered] {
        let reference = binio::encode(cube);
        for threads in [1usize, 4] {
            let rebuilt = with_exec(threads, 0, || {
                cube.with_changes(cube.changes_vec())
                    .expect("ids are valid")
            });
            assert_eq!(
                binio::encode(&rebuilt),
                reference,
                "row-rebuilt cube bytes diverged at threads={threads}"
            );
        }
    }
}

/// The weekly Apriori transactions read from the shared day store match
/// the pre-columnar row-scan reference exactly.
#[test]
fn weekly_transactions_from_day_store_match_row_scan() {
    use std::collections::{BTreeMap, BTreeSet};
    use wikistale_wikicube::{EntityId, PropertyId};
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let range = filtered.time_span().unwrap();
    // Row reference: scan every change, bucket into 7-day windows.
    let mut reference: BTreeMap<(EntityId, u32), BTreeSet<PropertyId>> = BTreeMap::new();
    for c in filtered.changes_in(range) {
        let week = (c.day - range.start()) as u32 / 7;
        reference
            .entry((c.entity, week))
            .or_default()
            .insert(c.property);
    }
    // Day-store walk: what the association-rule trainer reads.
    let mut got: BTreeMap<(EntityId, u32), BTreeSet<PropertyId>> = BTreeMap::new();
    for (_, field, list) in filtered.day_lists().iter() {
        for day in list.iter_in(range) {
            let week = (day - range.start()) as u32 / 7;
            got.entry((field.entity, week))
                .or_default()
                .insert(field.property);
        }
    }
    assert_eq!(got, reference);
}

/// Format compatibility: a v2 (row-wise) binio artifact decodes to the
/// same cube, upgrades to the identical v3 bytes, and yields identical
/// predictions at --threads {1, 4}.
#[test]
fn binio_v2_artifacts_load_and_predict_identically() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let v2 = binio::encode_v2(&filtered);
    let from_v2 = binio::decode(&v2).expect("v2 artifact decodes");
    assert_eq!(binio::encode(&from_v2), binio::encode(&filtered));
    let reference = with_exec(1, 0, || {
        run_paper_evaluation(&filtered, &split, &ExperimentConfig::default())
    });
    for threads in [1usize, 4] {
        let got = with_exec(threads, 0, || {
            run_paper_evaluation(&from_v2, &split, &ExperimentConfig::default())
        });
        assert_eq!(
            got, reference,
            "v2-loaded cube predictions diverged at threads={threads}"
        );
    }
}

/// Scheduling-order stress: many repetitions at an odd worker count with
/// single-element chunks — the configuration most likely to surface a
/// merge-order or termination bug. Run with
/// `cargo test -q --test differential -- --ignored stress`.
#[test]
#[ignore = "stress leg: run explicitly via -- --ignored stress"]
fn stress_scheduling_orders_never_change_results() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let reference = with_exec(1, 0, || {
        run_paper_evaluation(&filtered, &split, &ExperimentConfig::default())
    });
    for round in 0..12 {
        for (threads, chunk) in [(7, 1), (4, 3), (2, 1)] {
            let got = with_exec(threads, chunk, || {
                run_paper_evaluation(&filtered, &split, &ExperimentConfig::default())
            });
            assert_eq!(
                got, reference,
                "round={round} threads={threads} chunk={chunk}"
            );
        }
    }
    // The raw engine, hammered with single-element chunks and uneven
    // workloads.
    let items: Vec<u64> = (0..10_000).collect();
    let expected: Vec<u64> = items.iter().map(|&i| i * 2).collect();
    for round in 0..25 {
        let got = with_exec(7, 0, || {
            wikistale_exec::par_chunks("diff_stress", &items, 1, |c| {
                if c[0] % 997 == 0 {
                    std::thread::yield_now();
                }
                c[0] * 2
            })
        });
        assert_eq!(got, expected, "round={round}");
    }
}
