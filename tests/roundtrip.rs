//! Ingestion round trip: a filtered synthetic corpus is rendered into a
//! MediaWiki XML export (page revision histories with real wikitext
//! infoboxes), re-parsed, and re-diffed — the result must reproduce the
//! original per-field update histories. This exercises every layer of the
//! `wikistale-wikitext` substrate against generator-scale data.

use wikistale_core::filters::FilterPipeline;
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::{ChangeCube, ChangeKind, Date};
use wikistale_wikitext::{build_cube, cube_to_dump, parse_export, render_export};

/// Per-field history as (page, property) → ordered (day, value) pairs,
/// independent of interner numbering.
fn histories(
    cube: &ChangeCube,
) -> std::collections::BTreeMap<(String, String), Vec<(Date, String)>> {
    let mut map: std::collections::BTreeMap<(String, String), Vec<(Date, String)>> =
        Default::default();
    for c in cube.iter_changes() {
        let key = (
            cube.page_title(cube.page_of(c.entity)).to_owned(),
            format!(
                "{}::{}",
                cube.template_name(cube.template_of(c.entity)),
                cube.property_name(c.property)
            ),
        );
        map.entry(key)
            .or_default()
            .push((c.day, cube.value_text(c.value).to_owned()));
    }
    map
}

#[test]
fn filtered_corpus_survives_xml_round_trip() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    assert!(filtered.num_changes() > 1_000, "need a meaningful corpus");

    // Render → serialize → parse → diff.
    let pages = cube_to_dump(&filtered);
    let xml = render_export(&pages);
    let parsed = parse_export(&xml).expect("our own export must parse");
    assert_eq!(parsed.len(), pages.len());
    let rebuilt = build_cube(&parsed);

    // The rebuilt cube sees each field appear (create) at its first
    // filtered change and update afterwards; deletes cannot occur because
    // the filtered corpus is update-only and values never repeat
    // consecutively.
    assert!(rebuilt.iter_changes().all(|c| c.kind != ChangeKind::Delete));

    let original = histories(&filtered);
    let roundtripped = histories(&rebuilt);
    assert_eq!(original.len(), roundtripped.len(), "field set differs");
    for (key, expected) in &original {
        let got = &roundtripped[key];
        assert_eq!(got, expected, "history differs for {key:?}");
    }

    // Kind structure: per field, exactly one leading create.
    let mut first_seen = std::collections::HashSet::new();
    for c in rebuilt.iter_changes() {
        let is_first = first_seen.insert(c.field());
        assert_eq!(
            c.kind,
            if is_first {
                ChangeKind::Create
            } else {
                ChangeKind::Update
            },
            "kind structure broken at {c:?}"
        );
    }
}

#[test]
fn raw_corpus_with_deletes_round_trips_after_dedup() {
    // With creations and deletions kept (only day-dedup applied), the
    // round trip must reproduce the *liveness* of every field: present
    // fields match values; deleted fields are absent from the final
    // snapshot either way.
    let corpus = generate(&SynthConfig::tiny());
    let dedup_only = FilterPipeline {
        drop_bot_reverted: false,
        dedup_days: true,
        drop_creations_deletions: false,
        min_changes: None,
    };
    let (deduped, _) = dedup_only.apply(&corpus.cube);
    let pages = cube_to_dump(&deduped);
    let rebuilt = build_cube(&parse_export(&render_export(&pages)).unwrap());

    // Compare final states: replay both cubes' histories.
    let final_state = |cube: &ChangeCube| {
        let mut state: std::collections::BTreeMap<(String, String), Option<String>> =
            Default::default();
        for c in cube.iter_changes() {
            let key = (
                cube.entity_name(c.entity).to_owned(),
                cube.property_name(c.property).to_owned(),
            );
            match c.kind {
                ChangeKind::Delete => {
                    state.insert(key, None);
                }
                _ => {
                    state.insert(key, Some(cube.value_text(c.value).to_owned()));
                }
            }
        }
        state
    };
    let a = final_state(&deduped);
    let b = final_state(&rebuilt);
    // Entity naming differs (`title § template`), so compare per
    // (page, property) via value multisets of live fields.
    let live = |m: &std::collections::BTreeMap<(String, String), Option<String>>| {
        let mut values: Vec<String> = m.values().flatten().cloned().collect();
        values.sort();
        values
    };
    assert_eq!(
        live(&a),
        live(&b),
        "live field values differ after round trip"
    );
}
