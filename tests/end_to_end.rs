//! Cross-crate integration tests: the complete synth → filter → train →
//! evaluate pipeline, its invariants, and its persistence round trip.

use wikistale_core::experiment::{
    run_paper_evaluation, run_validation_evaluation, ExperimentConfig,
};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::split::EvalSplit;
use wikistale_core::{GRANULARITIES, TARGET_PRECISION};
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::{binio, ChangeCube, ChangeKind};

fn prepared() -> (ChangeCube, EvalSplit) {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    (filtered, split)
}

#[test]
fn filtered_corpus_contains_only_dense_update_histories() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, report) = FilterPipeline::paper().apply(&corpus.cube);
    // Updates only.
    assert!(filtered
        .iter_changes()
        .all(|c| c.kind == ChangeKind::Update));
    // No bot-reverted changes.
    assert!(filtered.iter_changes().all(|c| !c.flags.is_bot_reverted()));
    // At most one change per field per day.
    let mut prev = None;
    for c in filtered.iter_changes() {
        let key = (c.day, c.entity, c.property);
        assert_ne!(prev, Some(key), "duplicate field-day after dedup");
        prev = Some(key);
    }
    // Every field has ≥ 5 changes.
    let mut counts = std::collections::HashMap::new();
    for c in filtered.iter_changes() {
        *counts.entry(c.field()).or_insert(0usize) += 1;
    }
    assert!(counts.values().all(|&n| n >= 5));
    // The report accounts for every removed change.
    let removed: usize = report.stages.iter().map(|s| s.removed).sum();
    assert_eq!(removed + filtered.num_changes(), report.original);
}

#[test]
fn filter_pipeline_is_idempotent() {
    let corpus = generate(&SynthConfig::tiny());
    let (once, _) = FilterPipeline::paper().apply(&corpus.cube);
    let (twice, report) = FilterPipeline::paper().apply(&once);
    assert_eq!(once.changes_vec(), twice.changes_vec());
    assert!(report.stages.iter().all(|s| s.removed == 0));
}

#[test]
fn paper_evaluation_meets_the_wikimedia_target_on_synthetic_data() {
    let (filtered, split) = prepared();
    let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
    for g in &results.per_granularity {
        // Both §3 predictors and both ensembles clear 85 % precision at
        // every granularity, as in Table 1.
        for (name, outcome) in [
            ("FC", g.field_correlations),
            ("AR", g.association_rules),
            ("AND", g.and_ensemble),
            ("OR", g.or_ensemble),
        ] {
            assert!(
                outcome.precision() >= TARGET_PRECISION - 0.08,
                "{name} precision {:.3} at {}d",
                outcome.precision(),
                g.granularity
            );
            assert!(
                outcome.predictions > 0,
                "{name} silent at {}d",
                g.granularity
            );
        }
        // Neither baseline reaches a precision+recall combination that
        // solves the problem at the interesting granularities: the mean
        // baseline stays far below the precision bar, the threshold
        // baseline far below useful recall. (At 365 days even trivial
        // persistence pays off — the paper's baselines also peak there.)
        if g.granularity < 365 {
            assert!(
                g.mean_baseline.precision() < TARGET_PRECISION,
                "mean baseline at {}d: {:.3}",
                g.granularity,
                g.mean_baseline.precision()
            );
            assert!(g.threshold_baseline.recall() < 0.05);
        }
    }
}

#[test]
fn recall_ordering_and_overlap_bookkeeping() {
    let (filtered, split) = prepared();
    let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
    for g in &results.per_granularity {
        assert!(g.or_ensemble.recall() >= g.field_correlations.recall());
        assert!(g.or_ensemble.recall() >= g.association_rules.recall());
        assert!(g.and_ensemble.recall() <= g.field_correlations.recall());
        assert!(g.and_ensemble.recall() <= g.association_rules.recall());
        // Inclusion-exclusion across the ensembles.
        assert_eq!(
            g.or_ensemble.predictions + g.and_ensemble.predictions,
            g.field_correlations.predictions + g.association_rules.predictions
        );
        assert_eq!(g.and_ensemble.predictions, g.fc_ar_overlap.shared);
    }
}

#[test]
fn evaluation_is_deterministic() {
    let (filtered_a, split) = prepared();
    let (filtered_b, _) = prepared();
    assert_eq!(filtered_a.changes_vec(), filtered_b.changes_vec());
    let a = run_paper_evaluation(&filtered_a, &split, &ExperimentConfig::default());
    let b = run_paper_evaluation(&filtered_b, &split, &ExperimentConfig::default());
    for (ga, gb) in a.per_granularity.iter().zip(&b.per_granularity) {
        assert_eq!(ga.or_ensemble, gb.or_ensemble);
        assert_eq!(ga.mean_baseline, gb.mean_baseline);
    }
    assert_eq!(a.num_assoc_rules, b.num_assoc_rules);
    assert_eq!(a.num_field_corr_rules, b.num_field_corr_rules);
}

#[test]
fn validation_and_test_results_are_similar() {
    // §5.3.2: validation-tuned models transfer to the test year with only
    // marginal precision drift — the data distributions are similar.
    let (filtered, split) = prepared();
    let config = ExperimentConfig::default();
    let val = run_validation_evaluation(&filtered, &split, &config);
    let test = run_paper_evaluation(&filtered, &split, &config);
    let val7 = val.granularity(7).unwrap().or_ensemble;
    let test7 = test.granularity(7).unwrap().or_ensemble;
    assert!(
        (val7.precision() - test7.precision()).abs() < 0.10,
        "validation {:.3} vs test {:.3}",
        val7.precision(),
        test7.precision()
    );
}

#[test]
fn persisted_cube_reproduces_results() {
    let (filtered, split) = prepared();
    let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
    let bytes = binio::encode(&filtered);
    let reloaded = binio::decode(&bytes).unwrap();
    let results2 = run_paper_evaluation(&reloaded, &split, &ExperimentConfig::default());
    for (a, b) in results
        .per_granularity
        .iter()
        .zip(&results2.per_granularity)
    {
        assert_eq!(a.or_ensemble, b.or_ensemble);
        assert_eq!(a.truth_total, b.truth_total);
    }
}

#[test]
fn all_paper_granularities_are_evaluated() {
    let (filtered, split) = prepared();
    let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());
    let got: Vec<u32> = results
        .per_granularity
        .iter()
        .map(|g| g.granularity)
        .collect();
    assert_eq!(got, GRANULARITIES.to_vec());
    // §5.1: 430 prediction slots per field across the four granularities.
    let windows: u32 = GRANULARITIES.iter().map(|g| 365 / g).sum();
    assert_eq!(windows, 430);
}

#[test]
fn ground_truth_explains_a_nontrivial_share_of_false_positives() {
    // §5.4: some "false" positives are real staleness. With generator
    // ground truth we can quantify it: a visible share of OR-ensemble FPs
    // must coincide with genuinely forgotten updates.
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let index = wikistale_wikicube::CubeIndex::build(&filtered);
    let data = wikistale_core::EvalData::new(&filtered, &index);
    let trained = wikistale_core::experiment::TrainedPredictors::train(
        &data,
        split.train_and_validation(),
        &ExperimentConfig::default(),
    );
    use wikistale_core::ChangePredictor;
    let or = wikistale_core::or_ensemble(
        &trained.field_corr.predict(&data, split.test, 7),
        &trained.assoc.predict(&data, split.test, 7),
    );
    let truth = wikistale_core::truth_set(&index, split.test, 7);
    let mut fps = 0usize;
    let mut truly_stale = 0usize;
    for &(pos, w) in or.items() {
        if truth.contains(pos, w) {
            continue;
        }
        fps += 1;
        let window = or.window_range(w);
        if corpus
            .ground_truth
            .was_stale_in(index.field(pos as usize), window.start(), window.end())
        {
            truly_stale += 1;
        }
    }
    assert!(fps > 0, "expected some false positives");
    assert!(
        truly_stale * 4 >= fps,
        "at least a quarter of FPs should be genuine staleness, got {truly_stale}/{fps}"
    );
}
