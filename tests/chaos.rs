//! Chaos suite: seeded fault injection against the persistence layer,
//! the ingest path, and the checkpoint/resume machinery — through the
//! real `wikistale` binary where the contract is about exit codes, and
//! through the libraries where it is about types.
//!
//! The invariant under test everywhere: an injected fault ends in a
//! typed error or a quarantine entry — never a panic, never a silently
//! wrong answer. Every fault comes from a [`FaultInjector`] seed, so a
//! red run is reproducible from its assertion message alone.

use std::path::PathBuf;
use std::process::{Command, Output};
use wikistale_synth::fault::{FaultInjector, TEXT_FAULTS};
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::{binio, Date};
use wikistale_wikitext::xml::{render_export, PageDump, Revision};
use wikistale_wikitext::PageStream;

/// Exit code of the `--crash-after` hook (see `cli/src/commands.rs`).
const CRASH_EXIT: i32 = 42;

fn wikistale(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wikistale-chaos-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn exit_code(output: &Output) -> i32 {
    output
        .status
        .code()
        .expect("process was not killed by a signal")
}

/// A well-formed dump of `n` pages, one update per page per year.
fn sample_dump(n: usize) -> String {
    let pages: Vec<PageDump> = (0..n)
        .map(|i| PageDump {
            title: format!("Page {i}"),
            revisions: (0..3)
                .map(|r| Revision {
                    date: Date::EPOCH + (i as i32) + 365 * r,
                    text: format!("{{{{Infobox chaos | field = {i}.{r}}}}}"),
                })
                .collect(),
        })
        .collect();
    render_export(&pages)
}

// ---------------------------------------------------------------------
// Corrupt cube files

#[test]
fn corrupted_cube_bytes_always_yield_typed_errors() {
    let pristine = binio::encode(&generate(&SynthConfig::tiny()).cube);
    for seed in 0..40u64 {
        let mut inj = FaultInjector::new(seed);
        let mut bytes = pristine.clone();
        match seed % 4 {
            0 => inj.flip_bits(&mut bytes, 1 + (seed as usize % 64)),
            1 => inj.truncate(&mut bytes),
            2 => inj.insert_garbage(&mut bytes, 64),
            _ => bytes = inj.partial_write(&bytes),
        }
        if bytes == pristine {
            continue; // a repeated bit flip can cancel itself out
        }
        // Typed error, never a panic, never a silently decoded cube.
        let err = binio::decode(&bytes).expect_err(&format!("seed {seed} must not decode"));
        let _ = err.to_string(); // and the error must render
    }
}

#[test]
fn corrupted_cube_file_exits_with_corruption_code() {
    let dir = tmpdir("cube");
    let pristine = binio::encode(&generate(&SynthConfig::tiny()).cube);
    for seed in [7u64, 8, 9, 10] {
        let mut inj = FaultInjector::new(seed);
        let mut bytes = pristine.clone();
        match seed % 4 {
            0 => inj.flip_bits(&mut bytes, 17),
            1 => inj.truncate(&mut bytes),
            2 => inj.insert_garbage(&mut bytes, 64),
            _ => bytes = inj.partial_write(&bytes),
        }
        let path = dir.join(format!("corrupt-{seed}.wcube"));
        std::fs::write(&path, &bytes).unwrap();
        let out = wikistale(&["stats", "--in", path.to_str().unwrap()]);
        assert_eq!(
            exit_code(&out),
            4,
            "seed {seed}: corrupt input must exit 4, stderr: {}",
            stderr(&out)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Corrupt XML dumps

#[test]
fn corrupted_xml_never_panics_the_lossy_stream() {
    let pristine = sample_dump(30);
    for &fault in &TEXT_FAULTS {
        for seed in 0..8u64 {
            let mut xml = pristine.clone();
            FaultInjector::new(seed).corrupt_text(&mut xml, fault);
            // Strict parsing may fail, but with a typed error.
            if let Err(e) = wikistale_wikitext::parse_export(&xml) {
                let _ = e.to_string();
            }
            // The recovering stream absorbs the fault: every yielded item
            // is a page (no budget configured, an in-memory reader cannot
            // fail), and the books balance.
            let mut stream = PageStream::lossy(xml.as_bytes());
            let mut ok_pages = 0usize;
            for item in &mut stream {
                let page = item
                    .unwrap_or_else(|e| panic!("{fault:?} seed {seed}: lossy stream errored: {e}"));
                assert!(!page.title.is_empty());
                ok_pages += 1;
            }
            let report = stream.into_quarantine();
            assert_eq!(report.pages_ok, ok_pages, "{fault:?} seed {seed}");
            assert_eq!(
                report.pages_seen(),
                report.pages_ok + report.pages_quarantined,
                "{fault:?} seed {seed}"
            );
            assert!(report.pages_seen() <= 30, "{fault:?} seed {seed}");
        }
    }
}

#[test]
fn lossy_ingest_recovers_where_strict_ingest_refuses() {
    let dir = tmpdir("xml");
    // Unbalance a closing tag — reliably fatal to the strict parser.
    let mut xml = sample_dump(12);
    FaultInjector::new(3).corrupt_text(&mut xml, wikistale_synth::TextFault::DropClosingTag);
    let xml_path = dir.join("dump.xml");
    std::fs::write(&xml_path, &xml).unwrap();
    let xml_s = xml_path.to_str().unwrap();
    let out_cube = dir.join("out.wcube");
    let out_s = out_cube.to_str().unwrap();

    let strict = wikistale(&["ingest", "--xml", xml_s, "--out", out_s]);
    assert_eq!(exit_code(&strict), 4, "stderr: {}", stderr(&strict));

    let q = dir.join("quarantine.json");
    let lossy = wikistale(&[
        "ingest",
        "--xml",
        xml_s,
        "--out",
        out_s,
        "--lossy",
        "--quarantine",
        q.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&lossy), 0, "stderr: {}", stderr(&lossy));
    assert!(out_cube.exists());
    assert!(stderr(&lossy).contains("quarantine"), "{}", stderr(&lossy));
    // The written report is valid JSON and accounts for the loss.
    let report = std::fs::read_to_string(&q).unwrap();
    let v = wikistale_obs::json::parse(&report).unwrap();
    let quarantined = v.get("pages_quarantined").and_then(|x| x.as_f64()).unwrap();
    let skipped = v.get("revisions_skipped").and_then(|x| x.as_f64()).unwrap();
    assert!(
        quarantined + skipped >= 1.0,
        "the dropped tag must show up in the report: {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_error_budget_exits_with_budget_code() {
    let dir = tmpdir("budget");
    // 22 good pages, then 3 with no <title>: the stream sees ≥ 20 pages
    // before the quarantined fraction rises above a zero budget.
    let mut xml = sample_dump(22);
    for i in 0..3 {
        xml.push_str(&format!(
            "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp>\
             <text>broken {i}</text></revision></page>"
        ));
    }
    let xml_path = dir.join("dump.xml");
    std::fs::write(&xml_path, &xml).unwrap();
    let out = wikistale(&[
        "ingest",
        "--xml",
        xml_path.to_str().unwrap(),
        "--out",
        dir.join("out.wcube").to_str().unwrap(),
        "--error-budget",
        "0",
    ]);
    assert_eq!(exit_code(&out), 5, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("error budget exceeded"),
        "{}",
        stderr(&out)
    );
    // The post-mortem summary still went out.
    assert!(stderr(&out).contains("quarantine:"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Mid-write crashes

#[test]
fn a_crashed_rewrite_leaves_the_previous_file_readable() {
    let dir = tmpdir("atomic");
    let cube_path = dir.join("data.wcube");
    let cube_s = cube_path.to_str().unwrap();
    let out = wikistale(&["generate", "--preset", "tiny", "--out", cube_s]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let pristine = std::fs::read(&cube_path).unwrap();

    // Simulate dying mid-rewrite: a partial temp file appears next to
    // the real one, exactly where the atomic writer stages its bytes.
    let partial = FaultInjector::new(11).partial_write(&pristine);
    std::fs::write(dir.join("data.wcube.tmp.9999"), &partial).unwrap();

    // The original is untouched and still fully readable.
    let out = wikistale(&["stats", "--in", cube_s]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert_eq!(std::fs::read(&cube_path).unwrap(), pristine);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Checkpoint / resume

#[test]
fn killed_experiment_resumes_to_byte_identical_results() {
    let dir = tmpdir("resume");
    // Reference: one uninterrupted checkpointed run.
    let ref_ckpt = dir.join("ref");
    let reference = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--checkpoint-dir",
        ref_ckpt.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&reference), 0, "stderr: {}", stderr(&reference));
    let reference_stdout = stdout(&reference);
    assert!(reference_stdout.contains("OR-ensemble"));

    // Kill after every stage in turn; each crash must leave a loadable
    // manifest, and each resume must reproduce the reference verbatim.
    let stages = [
        "generate",
        "filter",
        "train",
        "granularity_1",
        "granularity_7",
        "granularity_30",
        "granularity_365",
    ];
    for stage in stages {
        let ckpt = dir.join(format!("kill-{stage}"));
        let ckpt_s = ckpt.to_str().unwrap();
        let killed = wikistale(&[
            "experiment",
            "--preset",
            "tiny",
            "--checkpoint-dir",
            ckpt_s,
            "--crash-after",
            stage,
        ]);
        assert_eq!(
            exit_code(&killed),
            CRASH_EXIT,
            "stage {stage}: stderr: {}",
            stderr(&killed)
        );
        // The manifest survived the crash intact (atomic writes).
        wikistale_core::checkpoint::CheckpointManifest::load(&ckpt)
            .expect("manifest parses after crash")
            .expect("manifest exists after crash");

        let resumed = wikistale(&[
            "experiment",
            "--preset",
            "tiny",
            "--checkpoint-dir",
            ckpt_s,
            "--resume",
        ]);
        assert_eq!(
            exit_code(&resumed),
            0,
            "stage {stage}: stderr: {}",
            stderr(&resumed)
        );
        assert_eq!(
            stdout(&resumed),
            reference_stdout,
            "resume after {stage} crash must reproduce the reference run exactly"
        );
        assert!(
            stderr(&resumed).contains("resume: reusing"),
            "stage {stage}: resume must reuse checkpointed artifacts: {}",
            stderr(&resumed)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_corrupted_checkpoint_artifact() {
    let dir = tmpdir("badckpt");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let killed = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--checkpoint-dir",
        ckpt_s,
        "--crash-after",
        "filter",
    ]);
    assert_eq!(exit_code(&killed), CRASH_EXIT, "{}", stderr(&killed));

    // Bit-rot the generate artifact behind the manifest's back.
    let artifact = ckpt.join("generate.wcube");
    let mut bytes = std::fs::read(&artifact).unwrap();
    FaultInjector::new(21).flip_bits(&mut bytes, 3);
    std::fs::write(&artifact, &bytes).unwrap();

    let resumed = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--checkpoint-dir",
        ckpt_s,
        "--resume",
    ]);
    assert_eq!(
        exit_code(&resumed),
        4,
        "a corrupt artifact must be a corruption error, not silently reused: {}",
        stderr(&resumed)
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Concurrency chaos: faults under --threads N must be indistinguishable
// from faults under --threads 1 — same exit codes, same quarantine books,
// same bytes. A worker pool that swallowed an error, double-counted a
// quarantined page, or tore an artifact write would show up here.

#[test]
fn faulted_lossy_ingest_is_identical_across_thread_counts() {
    let dir = tmpdir("conc-ingest");
    for (i, &fault) in TEXT_FAULTS.iter().enumerate() {
        let mut xml = sample_dump(20);
        FaultInjector::new(i as u64).corrupt_text(&mut xml, fault);
        let xml_path = dir.join(format!("dump-{i}.xml"));
        std::fs::write(&xml_path, &xml).unwrap();
        let xml_s = xml_path.to_str().unwrap();

        let leg = |threads: &str| {
            let out_cube = dir.join(format!("out-{i}-t{threads}.wcube"));
            let q = dir.join(format!("quarantine-{i}-t{threads}.json"));
            let out = wikistale(&[
                "ingest",
                "--xml",
                xml_s,
                "--out",
                out_cube.to_str().unwrap(),
                "--lossy",
                "--quarantine",
                q.to_str().unwrap(),
                "--threads",
                threads,
            ]);
            let cube = std::fs::read(&out_cube).ok();
            let report = std::fs::read_to_string(&q).ok();
            // stdout echoes the output path, which necessarily differs
            // between the legs — mask it so only real output can diverge.
            let text = stdout(&out).replace(out_cube.to_str().unwrap(), "<out>");
            (exit_code(&out), text, cube, report)
        };

        let serial = leg("1");
        let parallel = leg("4");
        assert_eq!(
            serial.0, parallel.0,
            "{fault:?}: exit codes diverged across thread counts"
        );
        assert_eq!(serial.1, parallel.1, "{fault:?}: stdout diverged");
        assert_eq!(serial.2, parallel.2, "{fault:?}: cube bytes diverged");
        assert_eq!(
            serial.3, parallel.3,
            "{fault:?}: quarantine reports diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_error_budget_exits_identically_under_threads() {
    let dir = tmpdir("conc-budget");
    let mut xml = sample_dump(22);
    for i in 0..3 {
        xml.push_str(&format!(
            "<page><revision><timestamp>2019-01-01T00:00:00Z</timestamp>\
             <text>broken {i}</text></revision></page>"
        ));
    }
    let xml_path = dir.join("dump.xml");
    std::fs::write(&xml_path, &xml).unwrap();
    let mut legs = Vec::new();
    for threads in ["1", "4"] {
        let out = wikistale(&[
            "ingest",
            "--xml",
            xml_path.to_str().unwrap(),
            "--out",
            dir.join(format!("out-t{threads}.wcube")).to_str().unwrap(),
            "--error-budget",
            "0",
            "--threads",
            threads,
        ]);
        assert_eq!(exit_code(&out), 5, "t={threads}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("error budget exceeded"),
            "t={threads}: {}",
            stderr(&out)
        );
        legs.push(stdout(&out));
    }
    assert_eq!(legs[0], legs[1], "budget-exceeded stdout must not vary");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_crashed_under_threads_resumes_serially_to_reference() {
    let dir = tmpdir("conc-resume");
    // Reference: uninterrupted serial run, no checkpoints.
    let reference = wikistale(&["experiment", "--preset", "tiny", "--threads", "1"]);
    assert_eq!(exit_code(&reference), 0, "stderr: {}", stderr(&reference));

    // Crash a 4-thread run mid-pipeline, then resume with 1 thread: the
    // checkpointed artifacts written by the worker pool must be exactly
    // what the serial resume expects (checksums included).
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let killed = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--checkpoint-dir",
        ckpt_s,
        "--crash-after",
        "granularity_7",
        "--threads",
        "4",
    ]);
    assert_eq!(exit_code(&killed), CRASH_EXIT, "{}", stderr(&killed));
    let resumed = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--checkpoint-dir",
        ckpt_s,
        "--resume",
        "--threads",
        "1",
    ]);
    assert_eq!(exit_code(&resumed), 0, "stderr: {}", stderr(&resumed));
    assert_eq!(
        stdout(&resumed),
        stdout(&reference),
        "4-thread crash + serial resume must reproduce the serial reference"
    );
    assert!(
        stderr(&resumed).contains("resume: reusing"),
        "{}",
        stderr(&resumed)
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The serving path: corrupt artifacts must be a classified startup
// failure, and a kill -9 must be fully recoverable

/// Corrupt or truncated serving artifacts fail `serve` startup with
/// exit code 4 and a clear message — never a panic, never a server that
/// answers from bad bytes.
#[test]
fn corrupt_artifacts_fail_serve_startup_with_corruption_code() {
    let dir = tmpdir("serve-corrupt");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let built = wikistale(&["experiment", "--preset", "tiny", "--checkpoint-dir", ckpt_s]);
    assert_eq!(exit_code(&built), 0, "{}", stderr(&built));

    let artifact = ckpt.join("filter.wcube");
    let pristine = std::fs::read(&artifact).unwrap();

    // Flipped byte: the CRC check refuses it.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&artifact, &flipped).unwrap();
    let out = wikistale(&["serve", "--artifacts", ckpt_s, "--addr", "127.0.0.1:0"]);
    assert_eq!(exit_code(&out), 4, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("CRC-32"), "{}", stderr(&out));
    assert!(!stderr(&out).contains("panicked"), "{}", stderr(&out));

    // Truncated artifact: the length check refuses it.
    std::fs::write(&artifact, &pristine[..pristine.len() / 2]).unwrap();
    let out = wikistale(&["serve", "--artifacts", ckpt_s, "--addr", "127.0.0.1:0"]);
    assert_eq!(exit_code(&out), 4, "stderr: {}", stderr(&out));
    assert!(!stderr(&out).contains("panicked"), "{}", stderr(&out));

    // Seeded corruptions through the fault injector, same contract.
    for seed in 0..12u64 {
        let mut inj = FaultInjector::new(seed);
        let mut bytes = pristine.clone();
        match seed % 3 {
            0 => inj.flip_bits(&mut bytes, 1 + (seed as usize % 32)),
            1 => inj.truncate(&mut bytes),
            _ => bytes = inj.partial_write(&bytes),
        }
        if bytes == pristine {
            continue;
        }
        std::fs::write(&artifact, &bytes).unwrap();
        let out = wikistale(&["serve", "--artifacts", ckpt_s, "--addr", "127.0.0.1:0"]);
        assert_eq!(exit_code(&out), 4, "seed {seed}: {}", stderr(&out));
        assert!(
            !stderr(&out).contains("panicked"),
            "seed {seed} panicked: {}",
            stderr(&out)
        );
    }

    // A missing checkpoint directory is i/o (3), not corruption.
    std::fs::remove_dir_all(&ckpt).ok();
    let out = wikistale(&["serve", "--artifacts", ckpt_s, "--addr", "127.0.0.1:0"]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("no checkpoint manifest"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// kill -9 a serving process mid-load, restart on the same checkpoint:
/// the replacement must report the identical fingerprint + generation
/// and keep answering — serving state is fully recoverable from disk.
#[test]
#[cfg(unix)]
fn killed_server_restarts_on_same_checkpoint_fingerprint() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::process::Stdio;

    let dir = tmpdir("serve-kill");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let built = wikistale(&["experiment", "--preset", "tiny", "--checkpoint-dir", ckpt_s]);
    assert_eq!(exit_code(&built), 0, "{}", stderr(&built));

    let spawn_server = || {
        let mut child = Command::new(env!("CARGO_BIN_EXE_wikistale"))
            .args(["serve", "--artifacts", ckpt_s, "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let mut identity = String::new();
        let addr: std::net::SocketAddr = loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "server died before readiness"
            );
            if line.contains("fingerprint") {
                identity = line.trim().to_string();
            }
            if let Some(rest) = line.trim().strip_prefix("serving on http://") {
                break rest.parse().unwrap();
            }
        };
        (child, addr, identity)
    };
    let healthz = |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        text
    };

    let (mut first, first_addr, first_identity) = spawn_server();
    // Mid-load: a few requests in flight, then SIGKILL — no drain, no
    // goodbye, exactly what a crashed box looks like.
    for _ in 0..3 {
        assert!(healthz(first_addr).contains("200 OK"));
    }
    first.kill().expect("SIGKILL");
    first.wait().expect("reaped");

    let (mut second, second_addr, second_identity) = spawn_server();
    assert_eq!(
        first_identity, second_identity,
        "restart must load the same checkpoint fingerprint + generation"
    );
    assert_ne!(first_addr, second_addr, "fresh ephemeral port");
    let body = healthz(second_addr);
    assert!(body.contains("200 OK"), "{body}");
    assert!(
        body.contains("\"status\": \"ok\""),
        "restarted server must serve: {body}"
    );
    second.kill().ok();
    second.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
