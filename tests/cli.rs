//! Black-box tests of the `wikistale` binary: every subcommand exercised
//! through a real process, end to end on a tiny corpus.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wikistale(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wikistale-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn help_is_printed_without_arguments() {
    let out = wikistale(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = wikistale(&["explode"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn generate_stats_filter_evaluate_monitor() {
    let dir = tmpdir("pipeline");
    let raw = dir.join("raw.wcube");
    let filtered = dir.join("filtered.wcube");
    let raw_s = raw.to_str().unwrap();
    let filtered_s = filtered.to_str().unwrap();

    let out = wikistale(&["generate", "--preset", "tiny", "--out", raw_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("generated"));
    assert!(raw.exists());

    let out = wikistale(&["stats", "--in", raw_s]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("creates"));
    assert!(text.contains("same-day dups"));

    let out = wikistale(&["filter", "--in", raw_s, "--out", filtered_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("bot-reverted"));
    assert!(text.contains("surviving"));
    assert!(filtered.exists());

    let out = wikistale(&["evaluate", "--in", filtered_s, "--vs-paper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("OR-ensemble"));
    assert!(text.contains("paper"));
    assert!(text.contains("89.69")); // the paper's headline number column

    let out = wikistale(&[
        "monitor",
        "--in",
        filtered_s,
        "--at",
        "2019-06-03",
        "--window",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("stale-candidate banners"));

    let figs = dir.join("figs");
    let out = wikistale(&[
        "figures",
        "--in",
        filtered_s,
        "--out-dir",
        figs.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(figs.join("figure3.svg").exists());
    assert!(figs.join("figure4.svg").exists());
    let svg = std::fs::read_to_string(figs.join("figure4.svg")).unwrap();
    assert!(svg.starts_with("<svg"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_parses_a_dump() {
    let dir = tmpdir("ingest");
    let xml = dir.join("dump.xml");
    let cube = dir.join("dump.wcube");
    std::fs::write(
        &xml,
        r#"<mediawiki>
  <page><title>London</title>
    <revision><timestamp>2018-01-01T00:00:00Z</timestamp>
      <text>{{Infobox settlement | population = 8}}</text></revision>
    <revision><timestamp>2019-01-01T00:00:00Z</timestamp>
      <text>{{Infobox settlement | population = 9}}</text></revision>
  </page>
</mediawiki>"#,
    )
    .unwrap();
    let out = wikistale(&[
        "ingest",
        "--xml",
        xml.to_str().unwrap(),
        "--out",
        cube.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ingested 1 pages"));
    assert!(cube.exists());

    let out = wikistale(&["stats", "--in", cube.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("changes        2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_refuses_short_corpora() {
    let dir = tmpdir("short");
    let xml = dir.join("dump.xml");
    let cube = dir.join("dump.wcube");
    std::fs::write(
        &xml,
        r#"<mediawiki><page><title>P</title>
      <revision><timestamp>2019-01-01T00:00:00Z</timestamp>
        <text>{{Infobox x | a = 1}}</text></revision>
    </page></mediawiki>"#,
    )
    .unwrap();
    wikistale(&[
        "ingest",
        "--xml",
        xml.to_str().unwrap(),
        "--out",
        cube.to_str().unwrap(),
    ]);
    let out = wikistale(&["evaluate", "--in", cube.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("two years"));
    std::fs::remove_dir_all(&dir).ok();
}
