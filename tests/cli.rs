//! Black-box tests of the `wikistale` binary: every subcommand exercised
//! through a real process, end to end on a tiny corpus.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wikistale(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wikistale-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn help_is_printed_without_arguments() {
    let out = wikistale(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = wikistale(&["explode"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn generate_stats_filter_evaluate_monitor() {
    let dir = tmpdir("pipeline");
    let raw = dir.join("raw.wcube");
    let filtered = dir.join("filtered.wcube");
    let raw_s = raw.to_str().unwrap();
    let filtered_s = filtered.to_str().unwrap();

    let out = wikistale(&["generate", "--preset", "tiny", "--out", raw_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("generated"));
    assert!(raw.exists());

    let out = wikistale(&["stats", "--in", raw_s]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("creates"));
    assert!(text.contains("same-day dups"));

    let out = wikistale(&["filter", "--in", raw_s, "--out", filtered_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("bot-reverted"));
    assert!(text.contains("surviving"));
    assert!(filtered.exists());

    let out = wikistale(&["evaluate", "--in", filtered_s, "--vs-paper"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("OR-ensemble"));
    assert!(text.contains("paper"));
    assert!(text.contains("89.69")); // the paper's headline number column

    let out = wikistale(&[
        "monitor",
        "--in",
        filtered_s,
        "--at",
        "2019-06-03",
        "--window",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("stale-candidate banners"));

    let figs = dir.join("figs");
    let out = wikistale(&[
        "figures",
        "--in",
        filtered_s,
        "--out-dir",
        figs.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(figs.join("figure3.svg").exists());
    assert!(figs.join("figure4.svg").exists());
    let svg = std::fs::read_to_string(figs.join("figure4.svg")).unwrap();
    assert!(svg.starts_with("<svg"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_metrics_cover_stages_and_sum_to_wall() {
    use wikistale_obs::json::{self, Value};

    let dir = tmpdir("metrics");
    let metrics = dir.join("metrics.json");
    let out = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("OR-ensemble"));

    let text = std::fs::read_to_string(&metrics).unwrap();
    let parsed = json::parse(&text).expect("metrics output is valid JSON");
    let spans = parsed.get("spans").and_then(Value::as_object).unwrap();

    // The acceptance stages: synth, filter, train (per predictor),
    // predict, eval — predict/eval nested under each granularity.
    for stage in ["synth", "filter", "train", "granularity_7d"] {
        assert!(spans.contains_key(stage), "missing stage {stage}: {text}");
    }
    let train = spans["train"].as_object().unwrap();
    for predictor in ["field_corr", "assoc", "mean", "threshold"] {
        assert!(train.contains_key(predictor), "missing train/{predictor}");
    }
    let g7 = spans["granularity_7d"].as_object().unwrap();
    assert!(g7.contains_key("predict"));
    assert!(g7.contains_key("eval"));
    let predict = g7["predict"].as_object().unwrap();
    for predictor in ["field_corr", "assoc", "mean", "threshold", "ensembles"] {
        assert!(
            predict.contains_key(predictor),
            "missing predict/{predictor}"
        );
    }

    // The serial pipeline accounts for its own wall time: top-level stage
    // totals sum to within 10 % of the generate→evaluate wall clock.
    let stage_sum: f64 = spans
        .values()
        .filter_map(|node| node.get("total_ms").and_then(Value::as_f64))
        .sum();
    let wall = parsed
        .get("gauges")
        .and_then(|g| g.get("experiment/wall_ms"))
        .and_then(Value::as_f64)
        .expect("wall gauge present");
    assert!(
        (wall - stage_sum).abs() / wall < 0.10,
        "stages sum to {stage_sum} ms but wall was {wall} ms"
    );

    // Table format renders the same registry as aligned text.
    let out = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--metrics",
        "-",
        "--metrics-format",
        "table",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let table = stdout(&out);
    assert!(table.contains("span"));
    assert!(table.contains("counter"));
    assert!(table.contains("synth"));

    // Error paths.
    let out = wikistale(&["experiment", "--preset", "tiny", "--metrics-format", "json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--metrics"));
    let out = wikistale(&[
        "experiment",
        "--preset",
        "tiny",
        "--metrics",
        "-",
        "--metrics-format",
        "yaml",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown metrics format"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_works_on_other_subcommands() {
    let dir = tmpdir("metrics-other");
    let raw = dir.join("raw.wcube");
    let metrics = dir.join("gen.json");
    let out = wikistale(&[
        "generate",
        "--preset",
        "tiny",
        "--out",
        raw.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&metrics).unwrap();
    let parsed = wikistale_obs::json::parse(&text).unwrap();
    assert!(parsed.get("spans").and_then(|s| s.get("synth")).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_parses_a_dump() {
    let dir = tmpdir("ingest");
    let xml = dir.join("dump.xml");
    let cube = dir.join("dump.wcube");
    std::fs::write(
        &xml,
        r#"<mediawiki>
  <page><title>London</title>
    <revision><timestamp>2018-01-01T00:00:00Z</timestamp>
      <text>{{Infobox settlement | population = 8}}</text></revision>
    <revision><timestamp>2019-01-01T00:00:00Z</timestamp>
      <text>{{Infobox settlement | population = 9}}</text></revision>
  </page>
</mediawiki>"#,
    )
    .unwrap();
    let out = wikistale(&[
        "ingest",
        "--xml",
        xml.to_str().unwrap(),
        "--out",
        cube.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ingested 1 pages"));
    assert!(cube.exists());

    let out = wikistale(&["stats", "--in", cube.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("changes        2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_refuses_short_corpora() {
    let dir = tmpdir("short");
    let xml = dir.join("dump.xml");
    let cube = dir.join("dump.wcube");
    std::fs::write(
        &xml,
        r#"<mediawiki><page><title>P</title>
      <revision><timestamp>2019-01-01T00:00:00Z</timestamp>
        <text>{{Infobox x | a = 1}}</text></revision>
    </page></mediawiki>"#,
    )
    .unwrap();
    wikistale(&[
        "ingest",
        "--xml",
        xml.to_str().unwrap(),
        "--out",
        cube.to_str().unwrap(),
    ]);
    let out = wikistale(&["evaluate", "--in", cube.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("two years"));
    std::fs::remove_dir_all(&dir).ok();
}
