//! Story test: a fully scripted corpus (no randomness at all) driven
//! through the complete product surface — detector training, weekly
//! flagging with explanations, and counter-anomaly detection. Every
//! expected behaviour of the paper's system is pinned to a hand-placed
//! change.

use wikistale_core::detector::{DetectorConfig, StalenessDetector};
use wikistale_core::predictors::SeasonalParams;
use wikistale_core::{find_counter_anomalies, AnomalyKind, AnomalyParams, Reason};
use wikistale_synth::Scenario;
use wikistale_wikicube::{CubeIndex, Date, DateRange, FieldId};

fn d(n: i32) -> Date {
    Date::EPOCH + n
}

/// Twelve years of history for one little wiki:
/// * an FC-style kit-color cluster on one club page (forgotten once in the
///   monitored year),
/// * an AR-style ko ⇒ wins rule across eight boxer pages (driver forgotten
///   once in the monitored year),
/// * an annually recurring field (seasonal predictor territory),
/// * a counter with the §5.4 typo.
fn build() -> wikistale_synth::SynthCorpus {
    let mut s = Scenario::new();
    let years: i32 = 12;

    // Cluster: home/away colors co-update twice a year.
    let club = s.entity("FC Example", "infobox club", "FC Example");
    let mut cluster_days = Vec::new();
    for y in 0..years {
        cluster_days.push(d(y * 365 + 40));
        cluster_days.push(d(y * 365 + 220));
    }
    s.co_updates(club, &["home_color", "away_color"], &cluster_days);
    // In the monitored year the away color is forgotten once.
    let forgotten_cluster_day = d(years * 365 + 40);
    s.update(club, "home_color", forgotten_cluster_day);
    s.forget(club, "away_color", forgotten_cluster_day);

    // Rule: every ko is accompanied by a wins change; wins also changes
    // alone. Eight boxers give the template-level rule its support.
    for b in 0..8 {
        let boxer = s.entity(
            &format!("Boxer {b}"),
            "infobox boxer",
            &format!("Boxer {b}"),
        );
        for y in 0..years {
            for fight in 0..6 {
                let day = d(y * 365 + fight * 55 + b);
                s.update(boxer, "wins", day);
                if fight % 2 == 0 {
                    s.update(boxer, "ko", day);
                }
            }
        }
    }
    // Monitored year: boxer 0's ko fires but wins is forgotten.
    let boxer0 = s.entity("Boxer 0", "infobox boxer", "Boxer 0");
    let forgotten_rule_day = d(years * 365 + 110);
    s.update(boxer0, "ko", forgotten_rule_day);
    s.forget(boxer0, "wins", forgotten_rule_day);

    // Annual recurrence: an awards field changing every year on day 300,
    // five changes per burst so the min-5 filter keeps it.
    let awards = s.entity("Awards", "infobox award", "Awards Page");
    for y in 0..years {
        for k in 0..5 {
            s.update(awards, "latest_winner", d(y * 365 + 300 + k));
        }
    }

    // Counter with the typo: grows by 380, collapses, recovers.
    let league = s.entity("League", "infobox league season", "League Page");
    let mut total = 6_000i64;
    for step in 0..12 {
        total += 380;
        let display = if (5..11).contains(&step) {
            total - 5_000 // the typo'd running value
        } else {
            total
        };
        s.update_with_value(league, "total_goals", d(step * 30), &display.to_string());
    }

    s.finish()
}

#[test]
fn scripted_story_end_to_end() {
    let corpus = build();
    let years = 12;
    let cutoff = d(years * 365);
    let detector = StalenessDetector::train_until(
        &corpus.cube,
        cutoff,
        &DetectorConfig {
            seasonal: Some(SeasonalParams::default()),
            ..DetectorConfig::default()
        },
    )
    .expect("trains");

    // Both hand-planted rules must exist.
    assert!(detector.predictors().field_corr.num_rules() >= 1);
    assert!(detector
        .predictors()
        .assoc
        .rules()
        .iter()
        .any(|r| corpus.cube.property_name(r.lhs) == "ko"
            && corpus.cube.property_name(r.rhs) == "wins"));

    // Week containing the forgotten away-color update.
    let flags = detector.flag(DateRange::new(d(years * 365 + 38), d(years * 365 + 45)));
    let away = flags
        .iter()
        .find(|f| {
            detector
                .data()
                .cube
                .property_name(f.field.property)
                .contains("away_color")
        })
        .expect("away color flagged");
    assert!(matches!(
        away.reasons[0],
        Reason::CorrelatedPartnerChanged { .. }
    ));
    assert!(corpus
        .ground_truth
        .was_stale_in(away.field, away.window.start(), away.window.end()));

    // Week containing the forgotten wins update.
    let flags = detector.flag(DateRange::new(d(years * 365 + 108), d(years * 365 + 115)));
    let wins = flags
        .iter()
        .find(|f| detector.data().cube.property_name(f.field.property) == "wins")
        .expect("wins flagged via the ko ⇒ wins rule");
    assert!(wins
        .reasons
        .iter()
        .any(|r| matches!(r, Reason::RuleFired { confidence, .. } if *confidence > 0.9)));

    // Week of the annual awards burst: seasonal recurrence fires even
    // though the field has no partner and no rule.
    let flags = detector.flag(DateRange::new(d(years * 365 + 298), d(years * 365 + 305)));
    let awards = flags
        .iter()
        .find(|f| detector.data().cube.property_name(f.field.property) == "latest_winner")
        .expect("annual field flagged");
    assert!(matches!(
        awards.reasons[0],
        Reason::AnnualRecurrence { hits, observable } if hits >= 10 && observable >= 10
    ));

    // The typo'd counter is caught.
    let index = CubeIndex::build(&corpus.cube);
    let anomalies = find_counter_anomalies(&corpus.cube, &index, &AnomalyParams::default());
    let league_goals = FieldId::new(
        corpus.cube.entity_id("League").unwrap(),
        corpus.cube.property_id("total_goals").unwrap(),
    );
    assert!(anomalies
        .iter()
        .any(|a| a.field == league_goals && a.kind == AnomalyKind::Collapse));
    assert!(anomalies
        .iter()
        .any(|a| a.field == league_goals && a.kind == AnomalyKind::Correction));
}
