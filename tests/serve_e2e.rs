//! End-to-end suite for `wikistale serve`: boots the real binary on an
//! ephemeral loopback port over a real checkpoint directory and checks
//! the serving contract from the outside:
//!
//! (a) `/v1/score` bytes are identical to rendering the batch-side
//!     prediction sets directly — serving IS the batch code path;
//! (b) responses are byte-identical across `--threads 1` and `4`;
//! (c) the response cache's hit/miss counters behave;
//! (d) `--queue-limit 1` sheds 503 + `Retry-After` under a burst;
//! (e) SIGTERM drains: in-flight requests complete, exit code 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use wikistale_core::experiment::ExperimentConfig;
use wikistale_core::scoring::ScoreQuery;
use wikistale_serve::routes::render_score_response;
use wikistale_serve::ServeArtifacts;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wikistale-serve-e2e-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Produce a real checkpoint directory with the actual binary.
fn make_checkpoint(dir: &Path) {
    let output = Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args([
            "experiment",
            "--preset",
            "tiny",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "experiment failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// A `wikistale serve` child on an ephemeral port.
struct ServeProc {
    child: Child,
    addr: SocketAddr,
    stdout: Option<BufReader<ChildStdout>>,
    /// Startup lines printed before "serving on".
    head: Vec<String>,
}

fn spawn_serve(dir: &Path, extra: &[&str]) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wikistale"))
        .args([
            "serve",
            "--artifacts",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut head = Vec::new();
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let mut err = String::new();
            if let Some(mut stderr) = child.stderr.take() {
                stderr.read_to_string(&mut err).ok();
            }
            panic!("server exited before readiness: {head:?}\nstderr: {err}");
        }
        let line = line.trim().to_string();
        if let Some(rest) = line.strip_prefix("serving on http://") {
            break rest.parse::<SocketAddr>().expect("bound address parses");
        }
        head.push(line);
    };
    ServeProc {
        child,
        addr,
        stdout: Some(reader),
        head,
    }
}

impl ServeProc {
    /// The startup line carrying fingerprint + generation.
    fn identity_line(&self) -> &str {
        self.head
            .iter()
            .find(|l| l.contains("fingerprint"))
            .expect("identity line printed")
    }

    /// SIGTERM, then wait; returns (exit code, rest of stdout).
    fn terminate(mut self) -> (i32, String) {
        let kill = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(kill.success());
        let mut rest = String::new();
        if let Some(mut reader) = self.stdout.take() {
            reader.read_to_string(&mut rest).ok();
        }
        let status = self.child.wait().expect("child waits");
        (status.code().expect("not signal-killed"), rest)
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, text)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    raw_request(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

// ---------------------------------------------------------------------
// (a) serving is the batch code path, to the byte

#[test]
fn score_route_bytes_match_batch_prediction_sets() {
    let dir = tmpdir("score-batch");
    make_checkpoint(&dir);
    // Load the same artifacts the server will serve, through the same
    // library path, and render the expected response from the batch
    // prediction sets directly.
    let artifacts = ServeArtifacts::load(&dir, &ExperimentConfig::default()).unwrap();
    let sets = artifacts.scorer().predict(7);
    let data = artifacts.data();
    let mut queries = Vec::new();
    for &(pos, w) in sets.or.items().iter().take(5) {
        let field = data.index.field(pos as usize);
        queries.push(ScoreQuery {
            entity: data.cube.entity_name(field.entity).to_string(),
            property: data.cube.property_name(field.property).to_string(),
            window: w,
        });
    }
    assert!(!queries.is_empty(), "tiny corpus has OR positives");
    // One certain negative as well: window far from any positive.
    let first = data.index.field(0);
    queries.push(ScoreQuery {
        entity: data.cube.entity_name(first.entity).to_string(),
        property: data.cube.property_name(first.property).to_string(),
        window: 0,
    });
    let expected = render_score_response(&artifacts, &sets, 7, &queries).unwrap();

    let triples: Vec<String> = queries
        .iter()
        .map(|q| {
            format!(
                "{{\"entity\": {}, \"property\": {}, \"window\": {}}}",
                wikistale_obs::json::escape(&q.entity),
                wikistale_obs::json::escape(&q.property),
                q.window
            )
        })
        .collect();
    let body = format!(
        "{{\"granularity\": 7, \"triples\": [{}]}}",
        triples.join(", ")
    );

    let server = spawn_serve(&dir, &[]);
    let (status, text) = http_post(server.addr, "/v1/score", &body);
    assert_eq!(status, 200, "{text}");
    assert_eq!(
        body_of(&text),
        expected,
        "served bytes diverge from batch-rendered bytes"
    );
    // The identity line carries the generation the cache is keyed by.
    assert!(server.identity_line().contains(&artifacts.generation));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// (b) byte-identical across thread counts

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let dir = tmpdir("threads");
    make_checkpoint(&dir);
    let one = spawn_serve(&dir, &["--threads", "1"]);
    let four = spawn_serve(&dir, &["--threads", "4"]);
    let score_body = "{\"granularity\": 7, \"triples\": []}";
    let targets = [
        "/healthz",
        "/v1/stale/Page%200-0?window=7",
        "/v1/stale/Page%201-1?window=30&at=2019-06-01",
        "/v1/stale/No%20Such%20Page",
        "/nope",
    ];
    for target in targets {
        let (s1, r1) = http_get(one.addr, target);
        let (s4, r4) = http_get(four.addr, target);
        assert_eq!(s1, s4, "{target}");
        assert_eq!(r1, r4, "response bytes differ at {target}");
    }
    let (s1, r1) = http_post(one.addr, "/v1/score", score_body);
    let (s4, r4) = http_post(four.addr, "/v1/score", score_body);
    assert_eq!(s1, 200);
    assert_eq!(s4, 200);
    assert_eq!(r1, r4, "score bytes differ across thread counts");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// (c) cache hit/miss counters

#[test]
fn cache_counters_track_hits_and_misses() {
    let dir = tmpdir("cache");
    make_checkpoint(&dir);
    let server = spawn_serve(&dir, &[]);
    let target = "/v1/stale/Page%200-0?window=7";

    let counters = |addr| {
        let (status, text) = http_get(addr, "/metrics?format=json");
        assert_eq!(status, 200);
        let parsed = wikistale_obs::json::parse(body_of(&text)).expect("metrics is valid JSON");
        let read = |name: &str| {
            parsed
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(wikistale_obs::json::Value::as_f64)
                .unwrap_or(0.0) as i64
        };
        (read("serve/cache/hit"), read("serve/cache/miss"))
    };

    let (hits0, misses0) = counters(server.addr);
    let (status, first) = http_get(server.addr, target);
    assert_eq!(status, 200);
    let (hits1, misses1) = counters(server.addr);
    assert_eq!(hits1, hits0, "first request cannot hit");
    assert!(misses1 > misses0, "first request must miss");

    let (status, second) = http_get(server.addr, target);
    assert_eq!(status, 200);
    assert_eq!(
        body_of(&first),
        body_of(&second),
        "cached response must be byte-identical"
    );
    let (hits2, misses2) = counters(server.addr);
    assert!(hits2 > hits1, "second identical request must hit");
    assert_eq!(misses2, misses1, "second request must not miss");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// (d) admission shedding at queue-limit 1

#[test]
fn queue_limit_one_sheds_503_with_retry_after() {
    let dir = tmpdir("shed");
    make_checkpoint(&dir);
    let server = spawn_serve(
        &dir,
        &[
            "--threads",
            "1",
            "--queue-limit",
            "1",
            "--deadline-ms",
            "10000",
        ],
    );
    let addr = server.addr;
    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let blocker = scope.spawn(move || http_get(addr, "/healthz?delay_ms=700"));
        std::thread::sleep(Duration::from_millis(200));
        let burst: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || http_get(addr, "/healthz")))
            .collect();
        let mut all: Vec<(u16, String)> = burst.into_iter().map(|h| h.join().unwrap()).collect();
        all.push(blocker.join().unwrap());
        all
    });
    let shed: Vec<&(u16, String)> = results.iter().filter(|(s, _)| *s == 503).collect();
    assert!(
        !shed.is_empty(),
        "expected 503s at queue-limit 1: {:?}",
        results.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    for (_, text) in &shed {
        assert!(text.contains("Retry-After: 1"), "503 without Retry-After");
    }
    assert!(
        results.iter().any(|(s, _)| *s == 200),
        "everything shed — server wedged"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// (e) SIGTERM drains in-flight work

#[test]
#[cfg(unix)]
fn sigterm_drains_in_flight_requests_and_exits_zero() {
    let dir = tmpdir("drain");
    make_checkpoint(&dir);
    let server = spawn_serve(&dir, &["--threads", "1", "--deadline-ms", "10000"]);
    let addr = server.addr;
    let in_flight = std::thread::spawn(move || http_get(addr, "/healthz?delay_ms=800"));
    std::thread::sleep(Duration::from_millis(250));
    let (code, rest) = server.terminate();
    assert_eq!(code, 0, "drain must exit cleanly; stdout: {rest}");
    assert!(rest.contains("drained"), "missing drain message: {rest}");
    let (status, text) = in_flight.join().unwrap();
    assert_eq!(status, 200, "in-flight request dropped: {text}");
    // And the port actually closed.
    assert!(TcpStream::connect(addr).is_err(), "listener still open");
    std::fs::remove_dir_all(&dir).ok();
}
