//! Cross-crate property tests: randomized generator configurations and
//! randomized cubes driven through the full pipeline. These catch the
//! interactions unit tests cannot — a filter meeting a pathological corpus
//! shape, a split meeting a short span, composition laws between slice,
//! merge, and serialization.

use proptest::prelude::*;
use wikistale_core::eval::{evaluate, truth_set};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::predictions::PredictionSet;
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, SynthConfig};
use wikistale_wikicube::{
    binio, merge, slice, ChangeCube, ChangeCubeBuilder, ChangeKind, CubeIndex, Date, DateRange,
};

/// A randomized but valid generator configuration, small enough to run
/// hundreds of times.
fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        0u64..1_000_000, // seed
        2usize..8,       // templates
        20usize..120,    // entities
        0.0f64..0.3,     // special fraction
        0.0f64..0.9,     // static fraction
        0.0f64..1.5,     // sessions per year
        0.0f64..0.6,     // delete prob
    )
        .prop_map(
            |(seed, templates, entities, special, statics, sessions, delete)| SynthConfig {
                seed,
                num_templates: templates,
                num_entities: entities,
                special_entity_fraction: special,
                static_fraction: statics,
                sessions_per_year: sessions,
                field_delete_prob: delete,
                static_delete_prob: delete,
                start: Date::from_ymd(2013, 6, 1).unwrap(),
                ..SynthConfig::tiny()
            },
        )
}

/// An arbitrary small cube.
fn arb_cube() -> impl Strategy<Value = ChangeCube> {
    proptest::collection::vec(
        (0i32..1_500, 0usize..6, 0usize..5, 0u8..3, "[a-z0-9]{0,6}"),
        1..120,
    )
    .prop_map(|rows| {
        let mut b = ChangeCubeBuilder::new();
        let entities: Vec<_> = (0..6)
            .map(|i| {
                b.entity(
                    &format!("e{i}"),
                    &format!("t{}", i % 3),
                    &format!("pg{}", i % 4),
                )
            })
            .collect();
        let props: Vec<_> = (0..5).map(|i| b.property(&format!("p{i}"))).collect();
        // Skip exact duplicate tuples: `merge` collapses them by contract,
        // which would make count-based properties flaky.
        let mut seen = std::collections::HashSet::new();
        for (day, e, p, kind, value) in rows {
            if !seen.insert((day, e, p, kind, value.clone())) {
                continue;
            }
            let kind = ChangeKind::from_u8(kind).unwrap();
            b.change(Date::EPOCH + day, entities[e], props[p], &value, kind);
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid configuration generates, filters, and (when long enough)
    /// evaluates without panicking, and the filter report always accounts
    /// for every change.
    #[test]
    fn prop_pipeline_never_panics(config in arb_config()) {
        let corpus = generate(&config);
        let (filtered, report) = FilterPipeline::paper().apply(&corpus.cube);
        let removed: usize = report.stages.iter().map(|s| s.removed).sum();
        prop_assert_eq!(removed + filtered.num_changes(), report.original);
        prop_assert!(filtered.iter_changes().all(|c| c.kind == ChangeKind::Update));
        if let Some(span) = filtered.time_span() {
            if let Some(split) = EvalSplit::for_span(span) {
                let index = CubeIndex::build(&filtered);
                let truth = truth_set(&index, split.test, 7);
                // Truth never exceeds fields × windows.
                prop_assert!(truth.len() <= index.num_fields() * 52);
            }
        }
    }

    /// Filtering is idempotent for arbitrary configurations.
    #[test]
    fn prop_filter_idempotent(config in arb_config()) {
        let corpus = generate(&config);
        let (once, _) = FilterPipeline::paper().apply(&corpus.cube);
        let (twice, report) = FilterPipeline::paper().apply(&once);
        prop_assert_eq!(once.changes_vec(), twice.changes_vec());
        prop_assert!(report.stages.iter().all(|s| s.removed == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization round-trips arbitrary cubes.
    #[test]
    fn prop_binio_round_trip(cube in arb_cube()) {
        let back = binio::decode(&binio::encode(&cube)).unwrap();
        prop_assert_eq!(back.changes_vec(), cube.changes_vec());
        prop_assert_eq!(binio::encode(&back), binio::encode(&cube));
    }

    /// Slicing at any boundary and re-merging reproduces the cube's
    /// change content.
    #[test]
    fn prop_slice_merge_partition(cube in arb_cube(), cut in 0i32..1_500) {
        let cut = Date::EPOCH + cut;
        let lo = DateRange::new(Date::EPOCH - 10, cut);
        let hi = DateRange::new(cut, Date::EPOCH + 2_000);
        let left = slice(&cube, lo);
        let right = slice(&cube, hi);
        prop_assert_eq!(left.num_changes() + right.num_changes(), cube.num_changes());
        let merged = merge([&left, &right]).unwrap();
        prop_assert_eq!(merged.num_changes(), cube.num_changes());
        // Content equality modulo interner numbering.
        let render = |c: &ChangeCube| -> Vec<(Date, String, String, String, ChangeKind)> {
            c.iter_changes()
                .map(|ch| (
                    ch.day,
                    c.entity_name(ch.entity).to_owned(),
                    c.property_name(ch.property).to_owned(),
                    c.value_text(ch.value).to_owned(),
                    ch.kind,
                ))
                .collect()
        };
        let mut a = render(&merged);
        let mut b = render(&cube);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Merging a cube with itself changes nothing (duplicate collapse).
    #[test]
    fn prop_merge_self_idempotent(cube in arb_cube()) {
        let merged = merge([&cube, &cube]).unwrap();
        // Non-identical duplicate tuples (same slot, different value) can
        // exist in the random input; self-merge still must not grow.
        prop_assert!(merged.num_changes() <= 2 * cube.num_changes());
        let again = merge([&merged, &merged]).unwrap();
        prop_assert_eq!(again.num_changes(), merged.num_changes());
    }

    /// Precision/recall algebra: evaluating the truth against itself is
    /// perfect; evaluating the empty set is silent, never negative.
    #[test]
    fn prop_eval_algebra(items in proptest::collection::vec((0u32..40, 0u32..52), 0..120)) {
        let range = DateRange::with_len(Date::TEST_START, 365);
        let truth = PredictionSet::from_items(range, 7, items.clone());
        let perfect = evaluate(&truth, &truth);
        if !truth.is_empty() {
            prop_assert!((perfect.precision() - 1.0).abs() < 1e-12);
            prop_assert!((perfect.recall() - 1.0).abs() < 1e-12);
            prop_assert!((perfect.f1() - 1.0).abs() < 1e-12);
        }
        let silent = evaluate(&PredictionSet::new(range, 7), &truth);
        prop_assert_eq!(silent.predictions, 0);
        prop_assert_eq!(silent.precision(), 0.0);
    }
}

/// Pinned regression (tests/props.proptest-regressions): two same-day
/// changes to one (entity, property) slot with different values. The cube
/// constructor canonicalizes such duplicates to the last value written, so
/// every composition law below must hold on the canonical form.
#[test]
fn regression_same_day_same_slot_duplicate_values() {
    let mut b = ChangeCubeBuilder::new();
    let entities: Vec<_> = (0..6)
        .map(|i| {
            b.entity(
                &format!("e{i}"),
                &format!("t{}", i % 3),
                &format!("pg{}", i % 4),
            )
        })
        .collect();
    let props: Vec<_> = (0..5).map(|i| b.property(&format!("p{i}"))).collect();
    let day = Date::from_ymd(1970, 3, 16).unwrap();
    b.change(day, entities[3], props[1], "", ChangeKind::Create);
    b.change(day, entities[3], props[1], "0", ChangeKind::Create);
    let cube = b.finish();

    // Last-value-wins canonicalization: one change survives, value "0".
    assert_eq!(cube.num_changes(), 1);
    assert_eq!(cube.value_text(cube.change_at(0).value), "0");

    // Serialization round-trips the canonical form.
    let back = binio::decode(&binio::encode(&cube)).unwrap();
    assert_eq!(back.changes_vec(), cube.changes_vec());
    assert_eq!(binio::encode(&back), binio::encode(&cube));

    // Slice/merge partition reproduces the canonical cube.
    for cut in [Date::EPOCH, day, day + 1] {
        let left = slice(&cube, DateRange::new(Date::EPOCH - 10, cut));
        let right = slice(&cube, DateRange::new(cut, Date::EPOCH + 2_000));
        assert_eq!(left.num_changes() + right.num_changes(), cube.num_changes());
        let merged = merge([&left, &right]).unwrap();
        assert_eq!(merged.num_changes(), cube.num_changes());
    }

    // Self-merge is idempotent on the canonical form.
    let merged = merge([&cube, &cube]).unwrap();
    assert_eq!(merged.num_changes(), cube.num_changes());
}

/// Coarse-to-fine consistency: a field predicted in a 1-day window lies in
/// exactly one 7-day window; truth sets respect the same nesting (a change
/// day marks the containing window at every granularity).
#[test]
fn truth_sets_nest_across_granularities() {
    let corpus = generate(&SynthConfig::tiny());
    let (filtered, _) = FilterPipeline::paper().apply(&corpus.cube);
    let split = EvalSplit::for_span(filtered.time_span().unwrap()).unwrap();
    let index = CubeIndex::build(&filtered);
    let day_truth = truth_set(&index, split.test, 1);
    let week_truth = truth_set(&index, split.test, 7);
    let year_truth = truth_set(&index, split.test, 365);
    for &(field, day_window) in day_truth.items() {
        let week_window = day_window / 7;
        if week_window < week_truth.num_windows() {
            assert!(
                week_truth.contains(field, week_window),
                "field {field} day-window {day_window} missing from week truth"
            );
        }
        assert!(year_truth.contains(field, 0));
    }
    // And the counts shrink monotonically with the window size.
    assert!(day_truth.len() >= week_truth.len());
    assert!(week_truth.len() >= year_truth.len());
}
