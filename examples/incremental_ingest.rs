//! Incremental ingestion: the workflow for real Wikipedia dumps.
//!
//! Full-history dumps ship as dozens of multi-gigabyte parts. This example
//! shows the intended pipeline on miniature data:
//!
//! 1. stream each part page-by-page ([`wikistale_wikitext::PageStream`] +
//!    [`wikistale_wikitext::diff::CubeAccumulator`]) — memory stays bounded
//!    by the largest page,
//! 2. persist each part as its own cube ([`wikistale_wikicube::binio`]),
//! 3. [`wikistale_wikicube::merge`] the parts (entities unified by name),
//! 4. [`wikistale_wikicube::slice`] out the training window and retrain.
//!
//! ```sh
//! cargo run --example incremental_ingest
//! ```

use std::io::BufReader;
use wikistale_wikicube::{binio, merge, slice, DateRange};
use wikistale_wikitext::diff::CubeAccumulator;
use wikistale_wikitext::PageStream;

/// One "dump part" per year, two pages with ongoing edit activity.
fn dump_part(year: i32) -> String {
    format!(
        r#"<mediawiki>
  <page>
    <title>Premier League</title>
    <revision><timestamp>{year}-05-01T10:00:00Z</timestamp>
      <text>{{{{Infobox football league | matches = {m1} | goals = {g1}}}}}</text>
    </revision>
    <revision><timestamp>{year}-08-15T10:00:00Z</timestamp>
      <text>{{{{Infobox football league | matches = {m2} | goals = {g2}}}}}</text>
    </revision>
  </page>
  <page>
    <title>London</title>
    <revision><timestamp>{year}-03-01T08:00:00Z</timestamp>
      <text>{{{{Infobox settlement | population_est = {pop}}}}}</text>
    </revision>
  </page>
</mediawiki>"#,
        m1 = (year - 2015) * 380,
        g1 = (year - 2015) * 1000,
        m2 = (year - 2015) * 380 + 190,
        g2 = (year - 2015) * 1000 + 500,
        pop = 8_700_000 + (year - 2015) * 50_000,
    )
}

fn main() {
    let dir = std::env::temp_dir().join("wikistale-incremental-demo");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1 + 2: stream each part and persist its cube.
    let mut part_paths = Vec::new();
    for year in 2016..=2019 {
        let xml = dump_part(year);
        let mut acc = CubeAccumulator::new();
        for page in PageStream::new(BufReader::new(xml.as_bytes())) {
            acc.add_page(&page.expect("well-formed part"));
        }
        let cube = acc.finish();
        let path = dir.join(format!("part-{year}.wcube"));
        binio::write_to_path(&cube, &path).expect("persist part");
        println!(
            "part {year}: {} pages, {} changes → {}",
            2,
            cube.num_changes(),
            path.display()
        );
        part_paths.push(path);
    }

    // 3: merge all parts. Each part re-created the same infoboxes, so the
    // per-part "creations" of later parts arrive as updates after merging
    // only if values differ — identity is by entity name.
    let parts: Vec<_> = part_paths
        .iter()
        .map(|p| binio::read_from_path(p).expect("read part"))
        .collect();
    let full = merge(parts.iter()).expect("consistent parts");
    println!(
        "\nmerged: {} changes, {} entities, {} pages, spanning {}",
        full.num_changes(),
        full.num_entities(),
        full.num_pages(),
        full.time_span().expect("non-empty")
    );
    assert_eq!(full.num_entities(), 2);

    // 4: slice out a training window (everything before 2019).
    let cutoff = "2019-01-01".parse().expect("date");
    let training = slice(
        &full,
        DateRange::new(full.time_span().unwrap().start(), cutoff),
    );
    println!(
        "training slice before {cutoff}: {} of {} changes",
        training.num_changes(),
        full.num_changes()
    );
    assert!(training.num_changes() < full.num_changes());
    assert!(training
        .time_span()
        .is_some_and(|span| span.end() <= cutoff));

    // The Premier League's matches/goals co-change survives the pipeline —
    // the signal the association rules would mine at scale.
    let league = full
        .entity_id("Premier League § Infobox football league")
        .expect("league infobox present");
    let co_change_days: Vec<_> = full
        .iter_changes()
        .filter(|c| c.entity == league)
        .map(|c| c.day)
        .collect();
    println!(
        "\nPremier League infobox changed on {} days — matches and goals always together",
        {
            let mut d = co_change_days.clone();
            d.dedup();
            d.len()
        }
    );

    std::fs::remove_dir_all(&dir).ok();
}
