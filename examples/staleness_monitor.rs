//! A weekly staleness monitor: the deployment scenario of §1 / Figure 1,
//! built on the [`wikistale_core::StalenessDetector`] facade.
//!
//! Every Monday the monitor re-checks the last week: fields whose
//! correlated partners (or rule antecedents) changed during the week, but
//! which did not change themselves, get a "this value might be out of
//! date" banner with an explanation. Because the corpus is synthetic we
//! can also check each banner against the generator's ground truth of
//! genuinely forgotten updates — the measurement §5.4 argues the
//! observed-change evaluation understates.
//!
//! ```sh
//! cargo run --example staleness_monitor --release
//! ```

use wikistale_core::detector::{DetectorConfig, StalenessDetector};
use wikistale_core::split::EvalSplit;
use wikistale_synth::{generate, SynthConfig};

fn main() {
    let corpus = generate(&SynthConfig::small());
    let split = EvalSplit::paper();

    // Train once on everything before the monitored year; the paper
    // recommends retraining at least once per year (§5.3.3).
    let detector = StalenessDetector::train_until(
        &corpus.cube,
        split.test.start(),
        &DetectorConfig::default(),
    )
    .expect("corpus has training history");
    println!(
        "trained on {} ({} correlation rules, {} association rules)\n",
        detector.train_range(),
        detector.predictors().field_corr.num_rules(),
        detector.predictors().assoc.num_rules(),
    );

    let weeks = 52u32;
    let mut banners = 0usize;
    let mut truly_stale = 0usize;
    let mut sample_shown = 0usize;
    for week in 0..weeks {
        let end = split.test.start() + ((week + 1) * 7) as i32;
        for flag in detector.flag_week(end) {
            banners += 1;
            let window = flag.window;
            let confirmed =
                corpus
                    .ground_truth
                    .was_stale_in(flag.field, window.start(), window.end());
            if confirmed {
                truly_stale += 1;
            }
            if sample_shown < 5 {
                sample_shown += 1;
                print!(
                    "week {week:>2}{}:\n{}",
                    if confirmed {
                        " (confirmed forgotten update)"
                    } else {
                        ""
                    },
                    flag.render(&detector.data())
                );
            }
        }
    }

    println!(
        "\n{banners} banners over {weeks} weeks ({:.1}/week)",
        banners as f64 / weeks as f64
    );
    println!(
        "{truly_stale} coincide with generator-ground-truth forgotten updates \
         ({:.1} % of banners point at genuinely stale data)",
        100.0 * truly_stale as f64 / banners.max(1) as f64
    );
    println!("\n(The paper reports ≈ 3,362 flagged fields per week at full Wikipedia scale.)");
    assert!(banners > 0, "a year of monitoring must produce banners");
}
