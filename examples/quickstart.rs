//! Quickstart: generate a corpus, filter it, train the predictors, and
//! reproduce the paper's headline result — the OR-ensemble beating the
//! Wikimedia Foundation's 85 % precision bar on 7-day windows.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use wikistale_core::experiment::{run_paper_evaluation, ExperimentConfig};
use wikistale_core::filters::FilterPipeline;
use wikistale_core::split::EvalSplit;
use wikistale_core::TARGET_PRECISION;
use wikistale_synth::{generate, SynthConfig};

fn main() {
    // 1. A corpus. In production this comes from `wikistale ingest` over a
    //    real dump; here the seeded generator stands in for the 15-year
    //    history the paper uses.
    let corpus = generate(&SynthConfig::small());
    println!(
        "raw corpus: {} changes, {} infoboxes, {} templates",
        corpus.cube.num_changes(),
        corpus.cube.num_entities(),
        corpus.cube.num_templates()
    );

    // 2. The §4 filter pipeline: drop bot reverts, collapse same-day
    //    churn, drop creations/deletions and near-static fields.
    let (filtered, report) = FilterPipeline::paper().apply(&corpus.cube);
    println!(
        "filtered: {} changes remain ({:.1} % of raw; paper keeps 9.2 %)",
        filtered.num_changes(),
        100.0 * report.surviving_fraction()
    );

    // 3. Train on everything before the test year, evaluate on the test
    //    year at 1/7/30/365-day granularity.
    let split = EvalSplit::paper();
    let results = run_paper_evaluation(&filtered, &split, &ExperimentConfig::default());

    println!(
        "\nrules: {} field correlations, {} association rules (covering {} infoboxes)\n",
        results.num_field_corr_rules, results.num_assoc_rules, results.covered_entities
    );
    for g in &results.per_granularity {
        let or = &g.or_ensemble;
        println!(
            "{:>4}-day windows: OR-ensemble precision {:>5.2} % recall {:>5.2} % ({} predictions){}",
            g.granularity,
            100.0 * or.precision(),
            100.0 * or.recall(),
            or.predictions,
            if or.precision() >= TARGET_PRECISION {
                "  ✓ meets the 85 % target"
            } else {
                ""
            }
        );
    }

    let seven = results.granularity(7).expect("7-day granularity evaluated");
    assert!(
        seven.or_ensemble.precision() >= TARGET_PRECISION,
        "the OR-ensemble must meet the Wikimedia precision target"
    );
    println!("\npaper reference (7-day): OR-ensemble 89.69 % precision, 8.19 % recall");
}
