//! Ingest a MediaWiki XML export into a change cube and inspect the
//! resulting change history — the real-data entry point of the system.
//!
//! The embedded dump is a miniature of what `dumps.wikimedia.org` serves:
//! two pages, several revisions each, one infobox per page. The example
//! parses it, diffs the revisions into change-cube tuples, runs the §4
//! filter pipeline, and prints the per-field histories.
//!
//! ```sh
//! cargo run --example dump_ingest
//! ```

use wikistale_core::filters::FilterPipeline;
use wikistale_wikitext::{build_cube, parse_export};

const DUMP: &str = r#"<mediawiki xmlns="http://www.mediawiki.org/xml/export-0.11/">
  <page>
    <title>Premier League</title>
    <revision>
      <timestamp>2018-05-13T17:00:00Z</timestamp>
      <text xml:space="preserve">{{Infobox football league
| current_champions = Manchester City
| matches = 380
| goals = 1018
}}</text>
    </revision>
    <revision>
      <timestamp>2019-05-12T18:00:00Z</timestamp>
      <text xml:space="preserve">{{Infobox football league
| current_champions = Manchester City
| matches = 380
| goals = 1072
}}</text>
    </revision>
    <revision>
      <timestamp>2019-05-12T21:00:00Z</timestamp>
      <text xml:space="preserve">{{Infobox football league
| current_champions = Manchester City
| matches = 380
| goals = 1071
}}</text>
    </revision>
  </page>
  <page>
    <title>London</title>
    <revision>
      <timestamp>2018-01-01T00:00:00Z</timestamp>
      <text xml:space="preserve">{{Infobox settlement
| population_est = 8,825,001
| pop_est_as_of = 2017
| mayor = [[Sadiq Khan]]
}}</text>
    </revision>
    <revision>
      <timestamp>2019-03-02T08:00:00Z</timestamp>
      <text xml:space="preserve">{{Infobox settlement
| population_est = 8,961,989
| pop_est_as_of = mid-2018
| mayor = [[Sadiq Khan]]
}}</text>
    </revision>
  </page>
</mediawiki>"#;

fn main() {
    let pages = parse_export(DUMP).expect("well-formed export");
    println!("parsed {} pages", pages.len());
    for page in &pages {
        println!("  {:<16} {} revisions", page.title, page.revisions.len());
    }

    let cube = build_cube(&pages);
    println!(
        "\ndiffed into {} changes across {} infobox fields:",
        cube.num_changes(),
        cube.num_properties()
    );
    for c in cube.iter_changes() {
        println!(
            "  {} {:<7} {:<30} {:<16} = {}",
            c.day,
            c.kind.to_string(),
            cube.entity_name(c.entity),
            cube.property_name(c.property),
            cube.value_text(c.value)
        );
    }

    // The same-day goal correction (1072 → 1071) collapses under the §4
    // day-deduplication filter; creations are dropped too.
    let (filtered, _) = FilterPipeline {
        min_changes: None, // keep sparse fields: this is a tiny demo corpus
        ..FilterPipeline::paper()
    }
    .apply(&cube);
    println!(
        "\nafter filtering, {} update changes remain:",
        filtered.num_changes()
    );
    for c in filtered.iter_changes() {
        println!(
            "  {} {:<30} {:<16} = {}",
            c.day,
            filtered.entity_name(c.entity),
            filtered.property_name(c.property),
            filtered.value_text(c.value)
        );
    }

    // The population co-change the paper's Figure 2 shows as a mined rule
    // (population_est with pop_est_as_of, infobox settlement) is visible
    // in this history: both changed on the same 2019-03-02 revision.
    let both_changed_together = filtered
        .iter_changes()
        .filter(|c| c.day.to_string() == "2019-03-02")
        .count();
    assert_eq!(both_changed_together, 2);
    println!("\npopulation_est and pop_est_as_of changed together — the Figure 2 rule pattern.");
}
