//! The §5.4 ground-truth case study, reconstructed: the 2018–19
//! Handball-Bundesliga season.
//!
//! The paper found that for the Handball-Bundesliga (which reuses
//! `infobox football league season`) the mined rule
//! `matches ∼ total goals` correctly flagged three match days on which
//! editors updated `matches` but forgot `total goals` — predictions the
//! observed-change evaluation scores as false positives even though they
//! are exactly the staleness the system exists to find. The paper also
//! observed editors incrementing a typo'd total for weeks (9,880 → 1,073
//! instead of 10,073) until a final correction to 16,227.
//!
//! This example scripts that page history, trains the association-rule
//! predictor on the league's sibling seasons, and shows the three
//! "false" positives being genuine catches.
//!
//! ```sh
//! cargo run --example ground_truth
//! ```

use wikistale_apriori::{AprioriParams, Support};
use wikistale_core::predictor::{ChangePredictor, EvalData};
use wikistale_core::predictors::{AssocParams, AssociationRulePredictor};
use wikistale_wikicube::{
    ChangeCube, ChangeCubeBuilder, ChangeKind, CubeIndex, Date, DateRange, EntityId, FieldId,
};

const TEMPLATE: &str = "infobox football league season";

/// Build the league corpus: 14 well-maintained sibling seasons (training
/// signal) plus the 2018-19 Handball-Bundesliga page, where `total goals`
/// is forgotten on three match days.
fn build_corpus() -> (ChangeCube, EntityId, Vec<Date>) {
    let mut b = ChangeCubeBuilder::new();
    let matches_p = b.property("matches");
    let goals_p = b.property("total goals");

    // Sibling seasons: football leagues where every match day updates
    // both fields (this is where the rule is mined from).
    for league in 0..14 {
        let entity = b.entity(
            &format!("2018-19 League {league} season"),
            TEMPLATE,
            &format!("2018-19 League {league}"),
        );
        let season_start = Date::from_ymd(2018, 8, 24).unwrap() + league;
        let mut total_goals = 0u32;
        for match_day in 0..30 {
            let day = season_start + match_day * 7;
            total_goals += 25 + (match_day as u32 * 7 + league as u32) % 11;
            b.change(
                day,
                entity,
                matches_p,
                &format!("{}", 9 * (match_day + 1)),
                ChangeKind::Update,
            );
            b.change(
                day,
                entity,
                goals_p,
                &format!("{total_goals}"),
                ChangeKind::Update,
            );
        }
    }

    // The Handball-Bundesliga 2018-19 page: same template, but on three
    // match days `total goals` was forgotten. The running value also
    // contains the paper's typo: 9,880 → 1,073 instead of 10,073, carried
    // forward until a final correction.
    let handball = b.entity(
        "2018-19 Handball-Bundesliga season",
        TEMPLATE,
        "2018-19 Handball-Bundesliga",
    );
    let season_start = Date::from_ymd(2018, 8, 23).unwrap();
    let forgotten_match_days = [24usize, 27, 30];
    let mut forgotten_days = Vec::new();
    let mut goals = 6_107u32;
    let mut typo_active = false;
    for match_day in 0..32 {
        let day = season_start + (match_day as i32) * 7;
        b.change(
            day,
            handball,
            matches_p,
            &format!("{}", 9 * (match_day + 1)),
            ChangeKind::Update,
        );
        if forgotten_match_days.contains(&match_day) {
            forgotten_days.push(day);
            continue; // editor forgot total goals
        }
        goals += 380;
        // The §5.4 typo: once the true total crosses 9,880 an editor
        // records it 9,000 short (the paper saw 1,073 instead of 10,073),
        // and later editors keep incrementing the wrong value…
        if goals > 9_880 {
            typo_active = true;
        }
        let display = if typo_active { goals - 9_000 } else { goals };
        // …until the last day of the season, where the total is finally
        // corrected (the paper saw 6,197 jump to the true 16,227).
        let display = if match_day == 31 { goals } else { display };
        b.change(
            day,
            handball,
            goals_p,
            &format!("{display}"),
            ChangeKind::Update,
        );
    }
    (b.finish(), handball, forgotten_days)
}

fn main() {
    let (cube, handball, forgotten_days) = build_corpus();
    let index = CubeIndex::build(&cube);
    let data = EvalData::new(&cube, &index);

    // Train on the first two thirds of the season across all leagues.
    let span = cube.time_span().unwrap();
    let train = DateRange::new(span.start(), span.start() + 160);
    let eval = DateRange::new(train.end(), span.end());
    let ar = AssociationRulePredictor::train(
        &data,
        train,
        AssocParams {
            apriori: AprioriParams {
                min_support: Support::Fraction(0.01),
                min_confidence: 0.6,
                max_itemset_size: 2,
            },
            validation_fraction: 0.10,
            min_rule_precision: 0.90,
            keep_unvalidated_rules: false,
        },
    );

    println!("mined {} template-level rules:", ar.num_rules());
    for rule in ar.rules() {
        println!(
            "  {} ⇒ {}  (confidence {:.2}, support {:.3})",
            cube.property_name(rule.lhs),
            cube.property_name(rule.rhs),
            rule.confidence,
            rule.support
        );
    }
    // The symmetric pair must be mined in both directions (the paper notes
    // this particular rule is symmetric: matches ∼ total goals).
    assert!(ar.num_rules() >= 2, "expected the matches/total-goals rule");

    // Predict on the remaining season at 7-day windows.
    let predictions = ar.predict(&data, eval, 7);
    let goals_field = FieldId::new(handball, cube.property_id("total goals").unwrap());
    let goals_pos = index.position(goals_field).unwrap();

    println!("\nHandball-Bundesliga, day-by-day:");
    let mut caught = 0;
    for &day in &forgotten_days {
        if day < eval.start() {
            continue;
        }
        let window = (day - eval.start()) as u32 / 7;
        let flagged = predictions.contains(goals_pos as u32, window);
        if flagged {
            caught += 1;
        }
        println!(
            "  {day}: matches updated, total goals forgotten → {}",
            if flagged {
                "FLAGGED as stale ✓ (scored as a false positive by the §5 protocol)"
            } else {
                "missed"
            }
        );
    }
    let in_eval = forgotten_days
        .iter()
        .filter(|&&d| d >= eval.start())
        .count();
    assert_eq!(
        caught, in_eval,
        "every forgotten update in the eval range must be caught"
    );

    // Show the typo story from the value history.
    println!("\ntotal-goals value history (note the 9,000-short typo and the final correction):");
    let days = index.days(goals_pos).to_vec();
    for &day in &days[days.len().saturating_sub(6)..] {
        let change = cube
            .changes_in(DateRange::new(day, day + 1))
            .find(|c| c.field() == goals_field)
            .unwrap();
        println!("  {day}: total goals = {}", cube.value_text(change.value));
    }

    // The counter-anomaly detector finds the §5.4 typo automatically.
    let anomalies = wikistale_core::find_counter_anomalies(
        &cube,
        &index,
        &wikistale_core::AnomalyParams::default(),
    );
    println!("\ncounter anomalies detected:");
    for a in &anomalies {
        println!(
            "  {}: {} — {} → {} ({:?})",
            a.day,
            cube.property_name(a.field.property),
            a.previous,
            a.value,
            a.kind
        );
    }
    assert!(
        anomalies
            .iter()
            .any(|a| a.kind == wikistale_core::AnomalyKind::Collapse && a.field == goals_field),
        "the typo collapse must be detected"
    );
}
